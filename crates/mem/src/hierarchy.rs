//! The full global-memory hierarchy: private L1s, shared NUCA L2 with a MOESI
//! directory, memory controllers, and the DMA bus requests of the hybrid
//! memory system.
//!
//! This is a combined functional/timing model.  Tag state (which lines are
//! where, in which MOESI state, and which cores the directory believes hold
//! copies) is tracked exactly; every demand access returns a latency and
//! injects into the [`Noc`] the packets the corresponding directory-protocol
//! transaction would send, labelled with the message classes of the paper's
//! Figure 10.

use serde::{Deserialize, Serialize};
use simkernel::{ByteSize, CoreId, Cycle, InternedStats, NodeId, StatHandle, StatRegistry};

use noc::{MessageClass, Noc, NocConfig};

use crate::addr::{Addr, LineAddr, LINE_BYTES};
use crate::cache::{CacheArray, CacheConfig};
use crate::dram::{DramConfig, DramModel};
use crate::moesi::{DirectoryEntry, MoesiState};
use crate::mshr::MshrFile;
use crate::prefetcher::{PrefetcherConfig, StridePrefetcher};
use crate::values::{word_index, LineValues, ValueStore, WORDS_PER_LINE};

/// The kind of demand access performed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// An instruction fetch.
    Ifetch,
}

impl AccessKind {
    /// Returns `true` for stores.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// Which level of the hierarchy ended up providing the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedBy {
    /// The core's own L1 cache.
    L1,
    /// The home slice of the shared NUCA L2.
    L2,
    /// A dirty copy forwarded from another core's L1.
    RemoteL1,
    /// Main memory.
    Dram,
}

/// The outcome of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccessResult {
    /// Total latency of the access, including all NoC legs.
    pub latency: Cycle,
    /// The level that provided the data.
    pub served_by: ServedBy,
    /// `true` if the access hit in the L1.
    pub l1_hit: bool,
}

/// Configuration of the whole cache hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// Number of cores / tiles.
    pub cores: usize,
    /// Private instruction cache configuration.
    pub l1i: CacheConfig,
    /// Private data cache configuration.
    pub l1d: CacheConfig,
    /// Per-tile slice of the shared NUCA L2.
    pub l2_slice: CacheConfig,
    /// Stride prefetcher attached to the L1 data cache.
    pub prefetcher: PrefetcherConfig,
    /// Main memory configuration.
    pub dram: DramConfig,
    /// MSHR entries per L1 data cache.
    pub mshr_entries: usize,
    /// Network configuration.
    pub noc: NocConfig,
}

impl MemorySystemConfig {
    /// The hybrid-memory-system configuration of Table 1: 32 KB L1 I/D,
    /// 256 KB L2 slice per core, MOESI, mesh NoC.
    pub fn isca2015(cores: usize) -> Self {
        MemorySystemConfig {
            cores,
            l1i: CacheConfig::new("l1i", ByteSize::kib(32), 4, Cycle::new(2)),
            l1d: CacheConfig::new("l1d", ByteSize::kib(32), 4, Cycle::new(2)),
            l2_slice: CacheConfig::new("l2", ByteSize::kib(256), 16, Cycle::new(15)),
            prefetcher: PrefetcherConfig::isca2015(),
            dram: DramConfig::isca2015(),
            mshr_entries: 16,
            noc: NocConfig::isca2015(cores),
        }
    }

    /// The cache-based baseline of §5.4: identical, but the L1 data cache is
    /// enlarged to 64 KB to match the 32 KB L1 + 32 KB SPM capacity of the
    /// hybrid system (same latency, as in the paper).
    pub fn cache_baseline(cores: usize) -> Self {
        let mut cfg = Self::isca2015(cores);
        cfg.l1d = CacheConfig::new("l1d", ByteSize::kib(64), 4, Cycle::new(2));
        cfg
    }

    /// A scaled-down configuration for fast tests and benches: the cache and
    /// L2 sizes shrink with the core count so that scaled workloads keep the
    /// same capacity relationships as the full machine.
    pub fn small(cores: usize) -> Self {
        MemorySystemConfig {
            cores,
            l1i: CacheConfig::new("l1i", ByteSize::kib(8), 4, Cycle::new(2)),
            l1d: CacheConfig::new("l1d", ByteSize::kib(8), 4, Cycle::new(2)),
            l2_slice: CacheConfig::new("l2", ByteSize::kib(64), 16, Cycle::new(15)),
            prefetcher: PrefetcherConfig::isca2015(),
            dram: DramConfig::isca2015(),
            mshr_entries: 16,
            noc: NocConfig::isca2015(cores),
        }
    }
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self::isca2015(64)
    }
}

/// A point-in-time snapshot of the aggregate hierarchy counters, used for
/// reports and the energy model.
///
/// The live counters are handle-indexed [`InternedStats`] bumped on the
/// access hot paths; [`MemorySystem::counters`] materialises this struct
/// from them on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyCounters {
    /// L1 data cache accesses (loads + stores reaching the tag array).
    pub l1d_accesses: u64,
    /// L1 data cache hits.
    pub l1d_hits: u64,
    /// L1 instruction cache accesses.
    pub l1i_accesses: u64,
    /// L1 instruction cache hits.
    pub l1i_hits: u64,
    /// L2 slice accesses (demand + prefetch + DMA probes).
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Lines read from or written to DRAM.
    pub dram_accesses: u64,
    /// Dirty lines written back from L1 to L2.
    pub l1_writebacks: u64,
    /// Lines evicted from L2 (with back-invalidation of L1 copies).
    pub l2_evictions: u64,
    /// Invalidation messages sent to L1 caches.
    pub invalidations: u64,
    /// Prefetch requests issued by the L1 prefetchers.
    pub prefetches: u64,
    /// Cache-to-cache forwards of dirty data.
    pub forwards: u64,
    /// DMA line reads (dma-get).
    pub dma_line_reads: u64,
    /// DMA line writes (dma-put).
    pub dma_line_writes: u64,
}

/// Dense [`StatHandle`]s for every hierarchy counter, interned once at
/// construction so the access paths bump a `Vec` index instead of walking a
/// string-keyed map; [`MemorySystem::export_stats`] batch-flushes them into
/// the report registry under the `mem.*` names.
#[derive(Debug, Clone, Copy)]
struct CounterHandles {
    l1d_accesses: StatHandle,
    l1d_hits: StatHandle,
    l1i_accesses: StatHandle,
    l1i_hits: StatHandle,
    l2_accesses: StatHandle,
    l2_hits: StatHandle,
    dram_accesses: StatHandle,
    l1_writebacks: StatHandle,
    l2_evictions: StatHandle,
    invalidations: StatHandle,
    prefetches: StatHandle,
    forwards: StatHandle,
    dma_line_reads: StatHandle,
    dma_line_writes: StatHandle,
}

impl CounterHandles {
    fn register(stats: &mut InternedStats) -> Self {
        CounterHandles {
            l1d_accesses: stats.intern_count("mem.l1d.accesses"),
            l1d_hits: stats.intern_count("mem.l1d.hits"),
            l1i_accesses: stats.intern_count("mem.l1i.accesses"),
            l1i_hits: stats.intern_count("mem.l1i.hits"),
            l2_accesses: stats.intern_count("mem.l2.accesses"),
            l2_hits: stats.intern_count("mem.l2.hits"),
            dram_accesses: stats.intern_count("mem.dram.accesses"),
            l1_writebacks: stats.intern_count("mem.l1.writebacks"),
            l2_evictions: stats.intern_count("mem.l2.evictions"),
            invalidations: stats.intern_count("mem.invalidations"),
            prefetches: stats.intern_count("mem.prefetches"),
            forwards: stats.intern_count("mem.forwards"),
            dma_line_reads: stats.intern_count("mem.dma.line_reads"),
            dma_line_writes: stats.intern_count("mem.dma.line_writes"),
        }
    }
}

/// The full memory hierarchy shared by all cores.
///
/// # Example
///
/// ```
/// use mem::{AccessKind, Addr, MemorySystem, MemorySystemConfig};
/// use noc::MessageClass;
/// use simkernel::CoreId;
///
/// let mut memsys = MemorySystem::new(MemorySystemConfig::small(4));
/// let first = memsys.access(CoreId::new(0), Addr::new(0x10_0000), AccessKind::Load,
///                           MessageClass::Read, 1);
/// let second = memsys.access(CoreId::new(0), Addr::new(0x10_0000), AccessKind::Load,
///                            MessageClass::Read, 1);
/// assert!(!first.l1_hit);
/// assert!(second.l1_hit);
/// assert!(second.latency < first.latency);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    noc: Noc,
    l1i: Vec<CacheArray<()>>,
    l1d: Vec<CacheArray<MoesiState>>,
    l2: Vec<CacheArray<DirectoryEntry>>,
    prefetchers: Vec<StridePrefetcher>,
    mshrs: Vec<MshrFile>,
    dram: DramModel,
    stats: InternedStats,
    handles: CounterHandles,
    /// `cores - 1`, meaningful only when `cores_pow2`: the home-slice hash
    /// runs on every access of every core, so the usual power-of-two core
    /// counts take an AND instead of a modulo.
    cores_mask: u64,
    cores_pow2: bool,
    /// Optional functional memory: per-L1, per-L2-slice and DRAM value
    /// copies, moved along the same paths as the modelled transactions.
    values: Option<HierarchyValues>,
    /// Presentation-only latency attribution (`SystemConfig.cycle_accounting`):
    /// when on, demand-miss-path NoC legs accumulate their queueing component
    /// (measured latency minus the backend-agreed zero-load latency) here, and
    /// the engine drains it per access to split stall cycles between the
    /// `NocQueue` and `MissWait` accounting categories.  One branch per send
    /// when off; never changes any modelled latency.
    attrib_queue: Cycle,
    attrib_enabled: bool,
}

/// The value copies of every level of the hierarchy (one [`ValueStore`] per
/// L1 data cache, one per L2 slice, one for DRAM).
#[derive(Debug)]
struct HierarchyValues {
    dram: ValueStore,
    l1d: Vec<ValueStore>,
    l2: Vec<ValueStore>,
}

impl HierarchyValues {
    fn new(cores: usize) -> Self {
        HierarchyValues {
            dram: ValueStore::new(),
            l1d: (0..cores).map(|_| ValueStore::new()).collect(),
            l2: (0..cores).map(|_| ValueStore::new()).collect(),
        }
    }
}

impl MemorySystem {
    /// Builds the hierarchy for the given configuration.
    pub fn new(config: MemorySystemConfig) -> Self {
        let cores = config.cores;
        let mut stats = InternedStats::new();
        let handles = CounterHandles::register(&mut stats);
        MemorySystem {
            noc: Noc::new(config.noc),
            l1i: (0..cores)
                .map(|_| CacheArray::new(config.l1i.clone()))
                .collect(),
            l1d: (0..cores)
                .map(|_| CacheArray::new(config.l1d.clone()))
                .collect(),
            l2: (0..cores)
                .map(|_| CacheArray::new(config.l2_slice.clone()))
                .collect(),
            prefetchers: (0..cores)
                .map(|_| StridePrefetcher::new(config.prefetcher))
                .collect(),
            mshrs: (0..cores)
                .map(|_| MshrFile::new(config.mshr_entries))
                .collect(),
            dram: DramModel::new(config.dram.clone(), cores),
            config,
            stats,
            handles,
            cores_mask: (cores as u64).wrapping_sub(1),
            cores_pow2: cores.is_power_of_two(),
            values: None,
            attrib_queue: Cycle::ZERO,
            attrib_enabled: false,
        }
    }

    /// Attaches the functional value stores (see `SystemConfig.track_values`).
    ///
    /// Must be called before the first access: the value stores assume every
    /// resident line was filled while tracking was active.
    pub fn enable_value_tracking(&mut self) {
        if self.values.is_none() {
            self.values = Some(HierarchyValues::new(self.config.cores));
        }
    }

    /// Returns `true` when data values are being tracked.
    pub fn tracks_values(&self) -> bool {
        self.values.is_some()
    }

    /// Turns on demand-miss latency attribution (cycle accounting).
    ///
    /// Presentation-only, like `enable_value_tracking`: the modelled
    /// latencies are untouched; the hierarchy merely starts accumulating
    /// the queueing component of demand-miss-path NoC legs for
    /// [`take_attributed_queue`](Self::take_attributed_queue).
    pub fn enable_latency_attribution(&mut self) {
        self.attrib_enabled = true;
    }

    /// Returns `true` when demand-miss latency attribution is on.
    pub fn attributes_latency(&self) -> bool {
        self.attrib_enabled
    }

    /// Drains the queueing cycles accumulated since the last call: the sum,
    /// over the demand-miss-path NoC legs of the accesses in between, of
    /// measured send latency minus the backend-agreed zero-load latency.
    ///
    /// Under the discrete-event NoC this is real home/link queueing; under
    /// the analytic backend it is the modelled contention term.  Always zero
    /// while attribution is off.  The engine calls this after every demand
    /// access so the accumulator never spans unrelated instructions.
    pub fn take_attributed_queue(&mut self) -> Cycle {
        std::mem::replace(&mut self.attrib_queue, Cycle::ZERO)
    }

    /// Sends one packet on a demand-miss critical-path leg, accumulating its
    /// queueing component when latency attribution is on.
    ///
    /// Off-critical-path traffic (prefetch fills, write-backs, DMA line
    /// moves) and invalidation fan-out (only the slowest sharer's round trip
    /// is on the critical path) go straight to [`Noc::send`] instead.
    #[inline]
    fn send_demand(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> Cycle {
        let latency = self.noc.send(from, to, class, payload_bytes);
        if self.attrib_enabled {
            let zero_load = self.noc.config().zero_load_latency(from, to, payload_bytes);
            self.attrib_queue += latency.saturating_sub(zero_load);
        }
        latency
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.config
    }

    /// Immutable access to the on-chip network (traffic counters).
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Mutable access to the on-chip network.
    ///
    /// The SPM coherence protocol shares the NoC with the cache hierarchy; it
    /// injects its own packets through this handle.
    pub fn noc_mut(&mut self) -> &mut Noc {
        &mut self.noc
    }

    /// Advances the network's clock to `now` (monotonic).
    ///
    /// The machine driver calls this with the issuing core's cycle before
    /// each trace operation so the discrete-event NoC backend queues packets
    /// in simulation time; the analytic backend ignores it.
    pub fn advance_noc(&mut self, now: Cycle) {
        self.noc.advance_to(now);
    }

    /// The interned hot-path statistics, live: cumulative `mem.*` counter
    /// values mid-run, which the trace sampler differentiates into a
    /// time-series without waiting for end-of-run export.
    pub fn interned_stats(&self) -> &InternedStats {
        &self.stats
    }

    /// A snapshot of the aggregate counters for reports and the energy model.
    pub fn counters(&self) -> HierarchyCounters {
        let s = &self.stats;
        let h = &self.handles;
        HierarchyCounters {
            l1d_accesses: s.get(h.l1d_accesses),
            l1d_hits: s.get(h.l1d_hits),
            l1i_accesses: s.get(h.l1i_accesses),
            l1i_hits: s.get(h.l1i_hits),
            l2_accesses: s.get(h.l2_accesses),
            l2_hits: s.get(h.l2_hits),
            dram_accesses: s.get(h.dram_accesses),
            l1_writebacks: s.get(h.l1_writebacks),
            l2_evictions: s.get(h.l2_evictions),
            invalidations: s.get(h.invalidations),
            prefetches: s.get(h.prefetches),
            forwards: s.get(h.forwards),
            dma_line_reads: s.get(h.dma_line_reads),
            dma_line_writes: s.get(h.dma_line_writes),
        }
    }

    /// Which L2 slice (core/tile index) is home for a line.
    #[inline]
    pub fn home_slice(&self, line: LineAddr) -> CoreId {
        let n = line.number();
        let idx = if self.cores_pow2 {
            n & self.cores_mask
        } else {
            n % self.config.cores as u64
        };
        CoreId::new(idx as usize)
    }

    /// Returns `true` if any L1 or L2 slice currently holds the line.
    pub fn is_cached(&self, line: LineAddr) -> bool {
        let home = self.home_slice(line);
        if self.l2[home.index()].contains(line) {
            return true;
        }
        self.l1d.iter().any(|l1| l1.contains(line))
    }

    /// MOESI state of the line in a particular core's L1 data cache.
    pub fn l1_state(&self, core: CoreId, line: LineAddr) -> MoesiState {
        self.l1d[core.index()]
            .lookup(line)
            .copied()
            .unwrap_or(MoesiState::Invalid)
    }

    // ---------------------------------------------------------------- values

    /// The freshest value copy of `line`, following the protocol state: a
    /// dirty L1 owner first, then the home L2 slice, then DRAM.
    fn freshest_line(&self, line: LineAddr) -> Option<LineValues> {
        let vals = self.values.as_ref()?;
        let home = self.home_slice(line);
        if let Some(entry) = self.l2[home.index()].lookup(line) {
            if entry.has_dirty_owner() {
                if let Some(owner) = entry.owner() {
                    if let Some(v) = vals.l1d[owner.index()].line(line) {
                        return Some(*v);
                    }
                }
            }
            if let Some(v) = vals.l2[home.index()].line(line) {
                return Some(*v);
            }
        }
        vals.dram.line(line).copied()
    }

    /// Reads the word containing `addr` as observed by `core`: its own L1
    /// copy if it holds one, the freshest copy otherwise.
    ///
    /// Returns `None` when value tracking is off.  Unwritten memory reads
    /// as zero.
    pub fn read_word(&self, core: CoreId, addr: Addr) -> Option<u64> {
        let vals = self.values.as_ref()?;
        let line = addr.line();
        if let Some(v) = vals.l1d[core.index()].line(line) {
            return Some(v[word_index(addr)]);
        }
        Some(self.freshest_line(line).map_or(0, |v| v[word_index(addr)]))
    }

    /// Writes the word containing `addr` on behalf of a store by `core`,
    /// into the highest level of the hierarchy holding the line (its L1
    /// copy normally; the home L2 slice or DRAM if a prefetch-induced
    /// eviction displaced it within the same access).
    pub fn write_word(&mut self, core: CoreId, addr: Addr, value: u64) {
        if self.values.is_none() {
            return;
        }
        let line = addr.line();
        let home = self.home_slice(line);
        let in_l1 = self.l1d[core.index()].contains(line);
        let in_l2 = self.l2[home.index()].contains(line);
        let l2_seed = if !in_l1 && in_l2 {
            // Materialising an L2 value line for a partial write must start
            // from the DRAM copy it currently mirrors, not from zeros.
            self.values
                .as_ref()
                .and_then(|v| v.dram.line(line).copied())
        } else {
            None
        };
        let vals = self.values.as_mut().expect("checked above");
        if in_l1 {
            vals.l1d[core.index()].write_word(addr, value);
        } else if in_l2 {
            if !vals.l2[home.index()].has_line(line) {
                if let Some(seed) = l2_seed {
                    vals.l2[home.index()].set_line(line, seed);
                }
            }
            vals.l2[home.index()].write_word(addr, value);
        } else {
            vals.dram.write_word(addr, value);
        }
    }

    /// The merged functional-memory image: DRAM overlaid with every dirty
    /// cached copy, so each word reads as its freshest value.  `None` when
    /// value tracking is off.
    ///
    /// Scratchpad-resident values are *not* included — they live with the
    /// system layer, which overlays them on top of this image.
    pub fn value_image(&self) -> Option<std::collections::BTreeMap<u64, u64>> {
        let vals = self.values.as_ref()?;
        let mut image = vals.dram.nonzero_words();
        let mut overlay = |line: LineAddr, values: &LineValues| {
            for (w, v) in values.iter().enumerate() {
                let addr = line.base().raw() + (w as u64) * 8;
                if *v != 0 {
                    image.insert(addr, *v);
                } else {
                    image.remove(&addr);
                }
            }
        };
        for (home, l2) in self.l2.iter().enumerate() {
            for (line, entry) in l2.resident_lines() {
                if entry.l2_dirty {
                    if let Some(v) = vals.l2[home].line(line) {
                        overlay(line, v);
                    }
                }
            }
        }
        for (core, l1) in self.l1d.iter().enumerate() {
            for (line, state) in l1.resident_lines() {
                if state.is_dirty() {
                    if let Some(v) = vals.l1d[core].line(line) {
                        overlay(line, v);
                    }
                }
            }
        }
        Some(image)
    }

    // ----------------------------------------------------------------- demand

    /// Performs one demand access from `core` to `addr`.
    ///
    /// `class` selects the traffic group the generated packets are accounted
    /// under (the paper separates instruction fetches, reads and writes).
    /// `reference_id` identifies the memory instruction for the stride
    /// prefetcher (the role the PC plays in hardware).
    pub fn access(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        class: MessageClass,
        reference_id: u64,
    ) -> MemAccessResult {
        match kind {
            AccessKind::Ifetch => self.ifetch(core, addr),
            AccessKind::Load | AccessKind::Store => {
                self.data_access(core, addr, kind, class, reference_id)
            }
        }
    }

    fn ifetch(&mut self, core: CoreId, addr: Addr) -> MemAccessResult {
        let line = addr.line();
        self.stats.inc(self.handles.l1i_accesses);
        let l1_latency = self.config.l1i.latency;
        if self.l1i[core.index()].access(line).is_some() {
            self.stats.inc(self.handles.l1i_hits);
            return MemAccessResult {
                latency: l1_latency,
                served_by: ServedBy::L1,
                l1_hit: true,
            };
        }
        // Instruction lines are read-only: fetch from the home L2 slice (or
        // memory) without directory bookkeeping.
        let (remote_latency, served_by) = self.fetch_into_l2(core, line, MessageClass::Ifetch);
        self.l1i[core.index()].insert(line, ());
        MemAccessResult {
            latency: l1_latency + remote_latency,
            served_by,
            l1_hit: false,
        }
    }

    fn data_access(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        class: MessageClass,
        reference_id: u64,
    ) -> MemAccessResult {
        let line = addr.line();
        let is_write = kind.is_write();
        self.stats.inc(self.handles.l1d_accesses);
        let l1_latency = self.config.l1d.latency;

        // The tag-array access hands back the resident state mutably, so a
        // silent write hit flips it to Modified right here instead of paying
        // a second way scan through `lookup_mut`.
        let l1_state = match self.l1d[core.index()].access(line) {
            Some(s) => {
                let before = *s;
                if is_write && before.can_write_silently() {
                    *s = MoesiState::Modified;
                }
                Some(before)
            }
            None => None,
        };

        let result = match l1_state {
            Some(state) if !is_write || state.can_write_silently() => {
                // Plain hit.
                self.stats.inc(self.handles.l1d_hits);
                if is_write {
                    self.set_directory_owner(core, line, MoesiState::Modified);
                }
                MemAccessResult {
                    latency: l1_latency,
                    served_by: ServedBy::L1,
                    l1_hit: true,
                }
            }
            Some(_) => {
                // Write hit on a Shared/Owned line: upgrade (invalidate peers).
                self.stats.inc(self.handles.l1d_hits);
                let upgrade_latency = self.upgrade_for_write(core, line, class);
                if let Some(s) = self.l1d[core.index()].lookup_mut(line) {
                    *s = MoesiState::Modified;
                }
                MemAccessResult {
                    latency: l1_latency + upgrade_latency,
                    served_by: ServedBy::L1,
                    l1_hit: true,
                }
            }
            None => {
                // L1 miss: fetch through the home L2 slice.
                let (fill_latency, served_by) = self.l1_miss_fill(core, line, is_write, class);
                let _ = self.mshrs[core.index()].register(line, fill_latency);
                self.mshrs[core.index()].retire(line);
                MemAccessResult {
                    latency: l1_latency + fill_latency,
                    served_by,
                    l1_hit: false,
                }
            }
        };

        // Train the stride prefetcher on every demand data access and bring
        // the predicted lines into the L1 (their latency is off the critical
        // path, but their traffic and cache pollution are real).
        if self.config.prefetcher.enabled {
            let predictions = self.prefetchers[core.index()].train(reference_id, addr);
            for target in predictions {
                self.prefetch_fill(core, target);
            }
        }

        result
    }

    /// Handles an L1 load/store miss, returning `(latency beyond L1, source)`.
    fn l1_miss_fill(
        &mut self,
        core: CoreId,
        line: LineAddr,
        is_write: bool,
        class: MessageClass,
    ) -> (Cycle, ServedBy) {
        let home = self.home_slice(line);
        let home_node = home.node();
        let core_node = core.node();

        // Request to the home slice.
        let request = self.send_demand(core_node, home_node, class, 8);
        let l2_latency = self.config.l2_slice.latency;
        self.stats.inc(self.handles.l2_accesses);

        let l2_entry = self.l2[home.index()].access(line).cloned();
        let mut fill_values: Option<LineValues> = None;
        let (beyond_l2, served_by) = if let Some(entry) = l2_entry {
            self.stats.inc(self.handles.l2_hits);
            if entry.has_dirty_owner() && entry.owner() != Some(core) {
                // Forward from the dirty owner's L1 straight to the requestor.
                let owner = entry.owner().expect("dirty owner");
                self.stats.inc(self.handles.forwards);
                let fwd = self.send_demand(home_node, owner.node(), class, 8);
                let data = self.send_demand(owner.node(), core_node, class, LINE_BYTES);
                if let Some(vals) = &self.values {
                    // The forwarded data is the owner's copy (captured
                    // before a write invalidates it below).
                    fill_values = vals.l1d[owner.index()].line(line).copied();
                }
                // Owner's copy: a read leaves it Owned; a write invalidates it.
                if is_write {
                    self.l1d[owner.index()].invalidate(line);
                    if let Some(vals) = &mut self.values {
                        vals.l1d[owner.index()].remove_line(line);
                    }
                    self.stats.inc(self.handles.invalidations);
                } else if let Some(s) = self.l1d[owner.index()].lookup_mut(line) {
                    *s = MoesiState::Owned;
                }
                (fwd + data, ServedBy::RemoteL1)
            } else {
                // Data supplied by the L2 slice.  A clean Exclusive owner in
                // another L1 is downgraded to Shared so it can no longer
                // write silently.
                if let Some(owner) = entry.owner() {
                    if owner != core && !entry.owner_state().is_dirty() {
                        if let Some(s) = self.l1d[owner.index()].lookup_mut(line) {
                            if *s == MoesiState::Exclusive {
                                *s = MoesiState::Shared;
                            }
                        }
                    }
                }
                if let Some(vals) = &self.values {
                    // An unmaterialised L2 value line still mirrors DRAM.
                    fill_values = vals.l2[home.index()]
                        .line(line)
                        .or_else(|| vals.dram.line(line))
                        .copied();
                }
                let data = self.send_demand(home_node, core_node, class, LINE_BYTES);
                (data, ServedBy::L2)
            }
        } else {
            // L2 miss: fetch the line from memory into the home slice.
            let dram_latency = self.dram_fetch(home, line, class);
            if let Some(vals) = &self.values {
                fill_values = vals.dram.line(line).copied();
            }
            let data = self.send_demand(home_node, core_node, class, LINE_BYTES);
            (dram_latency + data, ServedBy::Dram)
        };

        // Invalidate other sharers on a write.
        let invalidation_latency = if is_write {
            self.invalidate_other_sharers(core, line, class)
        } else {
            Cycle::ZERO
        };

        // Update directory state at the home slice (one lookup decides the
        // fill state and applies the update; an absent entry is unshared, so
        // a read fill without one is Exclusive, matching the old default).
        let new_state = if let Some(entry) = self.l2[home.index()].lookup_mut(line) {
            let state = if is_write {
                MoesiState::Modified
            } else if entry.is_unshared() {
                MoesiState::Exclusive
            } else {
                MoesiState::Shared
            };
            if is_write {
                entry.clear_sharers();
            }
            entry.add_sharer(core, state);
            if is_write {
                entry.l2_dirty = true;
            }
            state
        } else if is_write {
            MoesiState::Modified
        } else {
            MoesiState::Exclusive
        };

        // Fill the L1, handling the victim.
        self.fill_l1(core, line, new_state, class, fill_values);

        (
            request + l2_latency + beyond_l2 + invalidation_latency,
            served_by,
        )
    }

    /// Write-upgrade of a line the core already holds in a shared state.
    fn upgrade_for_write(&mut self, core: CoreId, line: LineAddr, class: MessageClass) -> Cycle {
        let home = self.home_slice(line);
        let rt = self.noc.round_trip(core.node(), home.node(), class, 8, 8);
        if self.attrib_enabled {
            // `round_trip` is two sends; its queueing component is whatever
            // it took beyond the two zero-load legs.
            let cfg = self.noc.config();
            let zero_load = cfg.zero_load_latency(core.node(), home.node(), 8)
                + cfg.zero_load_latency(home.node(), core.node(), 8);
            self.attrib_queue += rt.saturating_sub(zero_load);
        }
        let inv = self.invalidate_other_sharers(core, line, class);
        if let Some(entry) = self.l2[home.index()].lookup_mut(line) {
            entry.clear_sharers();
            entry.add_sharer(core, MoesiState::Modified);
            entry.l2_dirty = true;
        }
        rt + inv
    }

    /// Invalidates every L1 copy of `line` except the requestor's.
    ///
    /// Returns the extra latency on the critical path (the slowest
    /// invalidation/ack round trip).  Invalidation traffic is accounted in
    /// the write-back/replacement group, as in the paper.
    fn invalidate_other_sharers(
        &mut self,
        requestor: CoreId,
        line: LineAddr,
        _class: MessageClass,
    ) -> Cycle {
        let home = self.home_slice(line);
        let entry = match self.l2[home.index()].lookup(line) {
            Some(e) => e.clone(),
            None => return Cycle::ZERO,
        };
        let mut worst = Cycle::ZERO;
        // `entry` is a copy of the directory word, so the sharer bitmask can
        // be walked directly while the caches are updated.
        for sharer in entry.sharers_except(requestor) {
            self.l1d[sharer.index()].invalidate(line);
            if let Some(vals) = &mut self.values {
                // The requestor's own copy (about to be written) is at least
                // as fresh as any dropped Owned copy, so no write-back of
                // values is needed here.
                vals.l1d[sharer.index()].remove_line(line);
            }
            self.stats.inc(self.handles.invalidations);
            let inv = self
                .noc
                .send(home.node(), sharer.node(), MessageClass::WbRepl, 8);
            let ack = self
                .noc
                .send(sharer.node(), requestor.node(), MessageClass::WbRepl, 8);
            worst = worst.max(inv + ack);
        }
        if let Some(e) = self.l2[home.index()].lookup_mut(line) {
            let keep_requestor = e.is_sharer(requestor);
            e.clear_sharers();
            if keep_requestor {
                e.add_sharer(requestor, MoesiState::Modified);
            }
        }
        worst
    }

    /// Inserts a line into the requestor's L1, writing back the victim if
    /// dirty.  `values` is the data travelling with the fill when value
    /// tracking is on (`None` also for sources that still mirror DRAM).
    fn fill_l1(
        &mut self,
        core: CoreId,
        line: LineAddr,
        state: MoesiState,
        _class: MessageClass,
        values: Option<LineValues>,
    ) {
        if let Some(victim) = self.l1d[core.index()].insert(line, state) {
            let victim_home = self.home_slice(victim.line);
            let victim_values = self
                .values
                .as_mut()
                .and_then(|v| v.l1d[core.index()].remove_line(victim.line));
            if victim.state.is_dirty() {
                // Write the dirty victim back to its home L2 slice.
                self.stats.inc(self.handles.l1_writebacks);
                let _ = self.noc.send(
                    core.node(),
                    victim_home.node(),
                    MessageClass::WbRepl,
                    LINE_BYTES,
                );
                let l2_holds =
                    if let Some(entry) = self.l2[victim_home.index()].lookup_mut(victim.line) {
                        entry.remove_sharer(core);
                        entry.l2_dirty = true;
                        true
                    } else {
                        false
                    };
                if let (Some(vals), Some(v)) = (&mut self.values, victim_values) {
                    if l2_holds {
                        vals.l2[victim_home.index()].set_line(victim.line, v);
                    } else {
                        // Defensive: a write-back with no L2 entry lands in
                        // memory so the data is never lost.
                        vals.dram.set_line(victim.line, v);
                    }
                }
            } else if let Some(entry) = self.l2[victim_home.index()].lookup_mut(victim.line) {
                // Clean eviction: silently drop the sharer.
                entry.remove_sharer(core);
            }
        }
        if let Some(vals) = &mut self.values {
            vals.l1d[core.index()].copy_line(line, values);
        }
    }

    /// Ensures `line` is present in its home L2 slice, fetching it from DRAM
    /// if needed.  Returns the latency beyond the L2 lookup plus the source.
    fn fetch_into_l2(
        &mut self,
        core: CoreId,
        line: LineAddr,
        class: MessageClass,
    ) -> (Cycle, ServedBy) {
        let home = self.home_slice(line);
        let request = self.send_demand(core.node(), home.node(), class, 8);
        self.stats.inc(self.handles.l2_accesses);
        let l2_latency = self.config.l2_slice.latency;
        if self.l2[home.index()].access(line).is_some() {
            self.stats.inc(self.handles.l2_hits);
            let data = self.send_demand(home.node(), core.node(), class, LINE_BYTES);
            (request + l2_latency + data, ServedBy::L2)
        } else {
            let dram = self.dram_fetch(home, line, class);
            let data = self.send_demand(home.node(), core.node(), class, LINE_BYTES);
            (request + l2_latency + dram + data, ServedBy::Dram)
        }
    }

    /// Fetches a line from DRAM into the home L2 slice (allocating it there)
    /// and returns the latency of the DRAM leg.
    fn dram_fetch(&mut self, home: CoreId, line: LineAddr, class: MessageClass) -> Cycle {
        self.stats.inc(self.handles.dram_accesses);
        let mem_node = self.dram.node_for(line);
        let to_mem = self.send_demand(home.node(), mem_node, class, 8);
        let dram_latency = self.dram.access(line);
        let back = self.send_demand(mem_node, home.node(), class, LINE_BYTES);
        self.allocate_in_l2(home, line, DirectoryEntry::new());
        to_mem + dram_latency + back
    }

    /// Inserts a directory entry in the home L2 slice, handling the eviction
    /// of the victim line (back-invalidation of L1 copies, write-back of dirty
    /// data to memory).
    fn allocate_in_l2(&mut self, home: CoreId, line: LineAddr, entry: DirectoryEntry) {
        if let Some(victim) = self.l2[home.index()].insert(line, entry) {
            self.stats.inc(self.handles.l2_evictions);
            // Back-invalidate every L1 holding the victim (inclusive L2).
            let mut any_dirty_l1 = false;
            let mut dirty_l1_values: Option<LineValues> = None;
            for sharer in victim.state.sharers() {
                let dropped_values = self
                    .values
                    .as_mut()
                    .and_then(|v| v.l1d[sharer.index()].remove_line(victim.line));
                if let Some(state) = self.l1d[sharer.index()].invalidate(victim.line) {
                    if state.is_dirty() {
                        any_dirty_l1 = true;
                        dirty_l1_values = dropped_values.or(dirty_l1_values);
                    }
                }
                self.stats.inc(self.handles.invalidations);
                let _ = self
                    .noc
                    .send(home.node(), sharer.node(), MessageClass::WbRepl, 8);
                let _ = self
                    .noc
                    .send(sharer.node(), home.node(), MessageClass::WbRepl, 8);
            }
            let victim_l2_values = self
                .values
                .as_mut()
                .and_then(|v| v.l2[home.index()].remove_line(victim.line));
            if victim.state.l2_dirty || any_dirty_l1 {
                // Write the dirty victim back to memory.
                self.stats.inc(self.handles.dram_accesses);
                let mem_node = self.dram.node_for(victim.line);
                let _ = self
                    .noc
                    .send(home.node(), mem_node, MessageClass::WbRepl, LINE_BYTES);
                let _ = self.dram.write(victim.line);
                if let Some(vals) = &mut self.values {
                    // The freshest copy wins: a dirty L1 over the slice copy.
                    if let Some(v) = dirty_l1_values.or(victim_l2_values) {
                        vals.dram.set_line(victim.line, v);
                    }
                }
            }
        }
        if let Some(vals) = &mut self.values {
            // A freshly allocated slice line mirrors memory.
            let from_dram = vals.dram.line(line).copied();
            vals.l2[home.index()].copy_line(line, from_dram);
        }
    }

    /// Brings a prefetched line into the L1 (off the critical path).
    fn prefetch_fill(&mut self, core: CoreId, line: LineAddr) {
        if self.l1d[core.index()].contains(line) {
            return;
        }
        self.stats.inc(self.handles.prefetches);
        let home = self.home_slice(line);
        // Prefetch request + data response are real traffic (Read group).
        let _ = self
            .noc
            .send(core.node(), home.node(), MessageClass::Read, 8);
        self.stats.inc(self.handles.l2_accesses);
        if self.l2[home.index()].access(line).is_none() {
            self.dram_prefetch_fill(home, line);
        } else {
            self.stats.inc(self.handles.l2_hits);
        }
        let entry = self.l2[home.index()]
            .lookup(line)
            .cloned()
            .unwrap_or_default();
        let mut fill_values: Option<LineValues> = None;
        if entry.has_dirty_owner() && entry.owner() != Some(core) {
            // A prefetch of a line that is dirty in another L1 gets the data
            // forwarded from the owner, which is downgraded to Owned so its
            // later writes go through an upgrade (and invalidate this copy)
            // instead of happening silently next to a stale prefetched line.
            let owner = entry.owner().expect("dirty owner");
            self.stats.inc(self.handles.forwards);
            let _ = self
                .noc
                .send(home.node(), owner.node(), MessageClass::Read, 8);
            let _ = self
                .noc
                .send(owner.node(), core.node(), MessageClass::Read, LINE_BYTES);
            if let Some(s) = self.l1d[owner.index()].lookup_mut(line) {
                if *s == MoesiState::Modified {
                    *s = MoesiState::Owned;
                }
            }
            if let Some(vals) = &self.values {
                fill_values = vals.l1d[owner.index()].line(line).copied();
            }
        } else {
            let _ = self
                .noc
                .send(home.node(), core.node(), MessageClass::Read, LINE_BYTES);
            if let Some(vals) = &self.values {
                fill_values = vals.l2[home.index()]
                    .line(line)
                    .or_else(|| vals.dram.line(line))
                    .copied();
            }
        }
        let state = if entry.is_unshared() {
            MoesiState::Exclusive
        } else {
            MoesiState::Shared
        };
        if let Some(entry) = self.l2[home.index()].lookup_mut(line) {
            entry.add_sharer(core, state);
        }
        self.fill_l1(core, line, state, MessageClass::Read, fill_values);
    }

    fn dram_prefetch_fill(&mut self, home: CoreId, line: LineAddr) {
        self.stats.inc(self.handles.dram_accesses);
        let mem_node = self.dram.node_for(line);
        let _ = self.noc.send(home.node(), mem_node, MessageClass::Read, 8);
        let _ = self.dram.access(line);
        let _ = self
            .noc
            .send(mem_node, home.node(), MessageClass::Read, LINE_BYTES);
        self.allocate_in_l2(home, line, DirectoryEntry::new());
    }

    fn set_directory_owner(&mut self, core: CoreId, line: LineAddr, state: MoesiState) {
        let home = self.home_slice(line);
        if let Some(entry) = self.l2[home.index()].lookup_mut(line) {
            entry.add_sharer(core, state);
            entry.l2_dirty = true;
        }
    }

    // ----------------------------------------------------- parallel-engine lanes

    /// Builds the per-core lane for `core`: raw pointers straight into this
    /// hierarchy's L1I, L1D and stride-prefetcher slots, so the parallel
    /// engine's run-ahead phase works on the *resident* structures — no
    /// per-round swapping — and the serial commit phase sees every lane
    /// update for free.
    ///
    /// # Safety
    ///
    /// The lane borrows `self` without the compiler knowing.  The caller
    /// must guarantee, for the lane's whole lifetime, that
    ///
    /// * this `MemorySystem` is neither moved nor dropped,
    /// * at most one lane exists per core, and
    /// * the lane's methods are never called while any other code holds a
    ///   borrow of the hierarchy (the engine's run-ahead phase upholds this
    ///   by construction: workers own disjoint lanes and nothing touches
    ///   the shared `MemorySystem` until the phase barrier).
    pub unsafe fn new_lane(&mut self, core: CoreId) -> CoreLane {
        let idx = core.index();
        CoreLane {
            core,
            l1i: &mut self.l1i[idx],
            l1d: &mut self.l1d[idx],
            prefetcher: &mut self.prefetchers[idx],
            l1i_latency: self.config.l1i.latency,
            l1d_latency: self.config.l1d.latency,
            prefetcher_enabled: self.config.prefetcher.enabled,
            l1d_accesses: 0,
            l1d_hits: 0,
            l1i_accesses: 0,
            l1i_hits: 0,
        }
    }

    /// Folds a lane's scratch counters into the shared `mem.*` stats.
    /// Called serially, in core order, once at the end of the kernel.
    pub fn merge_lane_scratch(&mut self, lane: &mut CoreLane) {
        let h = self.handles;
        self.stats
            .add(h.l1d_accesses, std::mem::take(&mut lane.l1d_accesses));
        self.stats
            .add(h.l1d_hits, std::mem::take(&mut lane.l1d_hits));
        self.stats
            .add(h.l1i_accesses, std::mem::take(&mut lane.l1i_accesses));
        self.stats
            .add(h.l1i_hits, std::mem::take(&mut lane.l1i_hits));
    }

    /// Decides whether a demand access can be served entirely by `core`'s
    /// private structures, with no observable effect on any shared state.
    ///
    /// This is the lane fast path's classification, exposed read-only so the
    /// parallel engine's observer mode (value tracking, tracing, per-core
    /// debug) can classify identically while still executing every access
    /// through the full path:
    ///
    /// * instruction fetches: L1I hit;
    /// * loads: L1D hit in any valid state;
    /// * stores: L1D hit in `Modified` only — a silent `Exclusive→Modified`
    ///   upgrade writes the directory at the home slice, and `Shared`/
    ///   `Owned` hits invalidate other cores, so both defer;
    /// * loads and stores additionally defer when training the stride
    ///   prefetcher on them would emit predictions
    ///   ([`StridePrefetcher::would_predict`]) — prefetch fills go through
    ///   the shared L2/NoC/DRAM, so the access that issues them must run on
    ///   the full path, at its committed position in global order.
    pub fn is_lane_local(
        &self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        reference_id: u64,
    ) -> bool {
        let line = addr.line();
        match kind {
            AccessKind::Ifetch => self.l1i[core.index()].contains(line),
            AccessKind::Load => {
                self.l1d[core.index()].contains(line)
                    && !(self.config.prefetcher.enabled
                        && self.prefetchers[core.index()].would_predict(reference_id, addr))
            }
            AccessKind::Store => {
                matches!(
                    self.l1d[core.index()].lookup(line),
                    Some(MoesiState::Modified)
                ) && !(self.config.prefetcher.enabled
                    && self.prefetchers[core.index()].would_predict(reference_id, addr))
            }
        }
    }

    // ------------------------------------------------------------------- DMA

    /// Reads one line on behalf of a `dma-get`, snooping the caches.
    ///
    /// As described in §2.1 of the paper, the bus request looks for the data
    /// in the caches and reads the freshest copy from there; otherwise it
    /// reads main memory.  Cache state is not disturbed.
    pub fn dma_get_line(&mut self, requestor: CoreId, line: LineAddr) -> Cycle {
        self.dma_get_line_valued(requestor, line).0
    }

    /// Like [`MemorySystem::dma_get_line`], also returning the line's data.
    ///
    /// The values come from the same place the modelled bus request read —
    /// the dirty L1 owner, the home L2 slice, or memory — *not* from a
    /// freshest-copy search, so a snooping bug returns stale values that
    /// the verification oracle can catch.  `None` when value tracking is
    /// off; unmaterialised source lines return zeros.
    pub fn dma_get_line_valued(
        &mut self,
        requestor: CoreId,
        line: LineAddr,
    ) -> (Cycle, Option<LineValues>) {
        self.stats.inc(self.handles.dma_line_reads);
        let home = self.home_slice(line);
        let request = self
            .noc
            .send(requestor.node(), home.node(), MessageClass::Dma, 8);
        self.stats.inc(self.handles.l2_accesses);
        let l2_latency = self.config.l2_slice.latency;

        let entry = self.l2[home.index()].lookup(line).cloned();
        let mut read_values: Option<LineValues> = None;
        let beyond = match entry {
            Some(e) if e.has_dirty_owner() => {
                self.stats.inc(self.handles.l2_hits);
                self.stats.inc(self.handles.forwards);
                let owner = e.owner().expect("dirty owner");
                if let Some(vals) = &self.values {
                    read_values = Some(
                        vals.l1d[owner.index()]
                            .line(line)
                            .cloned()
                            .unwrap_or_default(),
                    );
                }
                let fwd = self
                    .noc
                    .send(home.node(), owner.node(), MessageClass::Dma, 8);
                let data = self.noc.send(
                    owner.node(),
                    requestor.node(),
                    MessageClass::Dma,
                    LINE_BYTES,
                );
                fwd + data
            }
            Some(_) => {
                self.stats.inc(self.handles.l2_hits);
                if let Some(vals) = &self.values {
                    read_values = Some(
                        vals.l2[home.index()]
                            .line(line)
                            .or_else(|| vals.dram.line(line))
                            .cloned()
                            .unwrap_or_default(),
                    );
                }
                self.noc
                    .send(home.node(), requestor.node(), MessageClass::Dma, LINE_BYTES)
            }
            None => {
                self.stats.inc(self.handles.dram_accesses);
                if let Some(vals) = &self.values {
                    read_values = Some(vals.dram.line(line).copied().unwrap_or_default());
                }
                let mem_node = self.dram.node_for(line);
                let to_mem = self.noc.send(home.node(), mem_node, MessageClass::Dma, 8);
                let dram = self.dram.access(line);
                let data = self
                    .noc
                    .send(mem_node, requestor.node(), MessageClass::Dma, LINE_BYTES);
                to_mem + dram + data
            }
        };
        (request + l2_latency + beyond, read_values)
    }

    /// Writes one line on behalf of a `dma-put`.
    ///
    /// The data is copied from the SPM to main memory and the line is
    /// invalidated in the whole cache hierarchy (§2.1 of the paper).
    pub fn dma_put_line(&mut self, requestor: CoreId, line: LineAddr) -> Cycle {
        self.dma_put_line_valued(requestor, line, None)
    }

    /// Like [`MemorySystem::dma_put_line`], also carrying the written data.
    ///
    /// `words` is the per-word write mask of the drained chunk (`None`
    /// entries are words outside the chunk or never staged, which must not
    /// clobber memory).  Every cached value copy of the line is dropped
    /// along with the tag invalidations.
    pub fn dma_put_line_valued(
        &mut self,
        requestor: CoreId,
        line: LineAddr,
        words: Option<&[Option<u64>; WORDS_PER_LINE]>,
    ) -> Cycle {
        self.stats.inc(self.handles.dma_line_writes);
        let home = self.home_slice(line);
        let data = self
            .noc
            .send(requestor.node(), home.node(), MessageClass::Dma, LINE_BYTES);
        self.stats.inc(self.handles.l2_accesses);
        let l2_latency = self.config.l2_slice.latency;

        // A partial-line put merges with the current line contents: flush
        // the freshest cached copy to memory before dropping it, so the
        // words outside the chunk survive the invalidations below.
        if let Some(v) = self.freshest_line(line) {
            if let Some(vals) = &mut self.values {
                vals.dram.set_line(line, v);
            }
        }

        // Invalidate every cached copy.
        if let Some(entry) = self.l2[home.index()].lookup(line).cloned() {
            for sharer in entry.sharers() {
                self.l1d[sharer.index()].invalidate(line);
                if let Some(vals) = &mut self.values {
                    vals.l1d[sharer.index()].remove_line(line);
                }
                self.stats.inc(self.handles.invalidations);
                let _ = self
                    .noc
                    .send(home.node(), sharer.node(), MessageClass::Dma, 8);
                let _ = self
                    .noc
                    .send(sharer.node(), home.node(), MessageClass::Dma, 8);
            }
            self.l2[home.index()].invalidate(line);
            if let Some(vals) = &mut self.values {
                vals.l2[home.index()].remove_line(line);
            }
        }

        // Write the line to memory.
        self.stats.inc(self.handles.dram_accesses);
        if let (Some(vals), Some(words)) = (&mut self.values, words) {
            for (w, value) in words.iter().enumerate() {
                if let Some(value) = value {
                    vals.dram.write_word(line.base() + (w as u64) * 8, *value);
                }
            }
        }
        let mem_node = self.dram.node_for(line);
        let to_mem = self
            .noc
            .send(home.node(), mem_node, MessageClass::Dma, LINE_BYTES);
        let dram = self.dram.write(line);
        let ack = self
            .noc
            .send(mem_node, requestor.node(), MessageClass::Dma, 8);
        data + l2_latency + to_mem + dram + ack
    }

    // ----------------------------------------------------------------- stats

    /// Exports the hierarchy counters into a [`StatRegistry`], together with
    /// the NoC traffic.
    ///
    /// The interned counters flush under their registered `mem.*` names in
    /// one batch; only the derived figures (misses, hit ratio) are computed
    /// here.
    pub fn export_stats(&self, stats: &mut StatRegistry) {
        self.stats.export_into(stats);
        let accesses = self.stats.get(self.handles.l1d_accesses);
        let hits = self.stats.get(self.handles.l1d_hits);
        stats.add_count("mem.l1d.misses", accesses - hits);
        if accesses > 0 {
            stats.set_value("mem.l1d.hit_ratio", hits as f64 / accesses as f64);
        }
        self.noc.export_stats(stats);
    }
}

/// One core's private slice of the hierarchy — raw pointers to its L1I,
/// L1D and stride prefetcher inside the [`MemorySystem`] — for the parallel
/// engine's run-ahead phase.
///
/// While a core runs ahead inside an epoch its worker thread owns the lane
/// exclusively, so [`try_access`](Self::try_access) needs no `&mut` on the
/// shared hierarchy; because the pointers target the resident structures,
/// the commit phase (which runs through [`MemorySystem::access`]) observes
/// every lane update with no swapping or merging per round.  The fast path
/// must stay bit-equivalent to [`MemorySystem::access`] for every operation
/// it accepts (same latency, same tag/recency updates, same counters after
/// [`MemorySystem::merge_lane_scratch`]); the hot-loop golden wall and the
/// observer-equivalence tests pin this.
///
/// The safety contract is stated on [`MemorySystem::new_lane`]; every
/// dereference below relies on it.
#[derive(Debug)]
pub struct CoreLane {
    core: CoreId,
    l1i: *mut CacheArray<()>,
    l1d: *mut CacheArray<MoesiState>,
    prefetcher: *mut StridePrefetcher,
    l1i_latency: Cycle,
    l1d_latency: Cycle,
    prefetcher_enabled: bool,
    // Scratch counters, merged into the shared stats in core order.
    l1d_accesses: u64,
    l1d_hits: u64,
    l1i_accesses: u64,
    l1i_hits: u64,
}

// SAFETY: a lane is exclusively owned by one engine worker at a time, and
// the structures its pointers target are touched by no one else while the
// run-ahead phase is in flight (`MemorySystem::new_lane`'s contract).
unsafe impl Send for CoreLane {}

impl CoreLane {
    /// The core this lane belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Non-mutating variant of [`try_access`](Self::try_access)'s
    /// classification: would the access be served by the lane alone?
    /// Same predicate as [`MemorySystem::is_lane_local`].
    pub fn can_serve(&self, addr: Addr, kind: AccessKind, reference_id: u64) -> bool {
        // SAFETY: shared reads under `MemorySystem::new_lane`'s contract.
        let (l1i, l1d, prefetcher) = unsafe { (&*self.l1i, &*self.l1d, &*self.prefetcher) };
        let line = addr.line();
        match kind {
            AccessKind::Ifetch => l1i.contains(line),
            AccessKind::Load => {
                l1d.contains(line)
                    && !(self.prefetcher_enabled && prefetcher.would_predict(reference_id, addr))
            }
            AccessKind::Store => {
                matches!(l1d.lookup(line), Some(MoesiState::Modified))
                    && !(self.prefetcher_enabled && prefetcher.would_predict(reference_id, addr))
            }
        }
    }

    /// Attempts a demand access on the lane's private structures alone.
    ///
    /// Returns `None` — with no state mutated — when the access needs the
    /// shared hierarchy (the classification of
    /// [`MemorySystem::is_lane_local`]); the engine then defers the
    /// operation to the epoch-boundary commit, where it runs through the
    /// ordinary [`MemorySystem::access`] path.
    pub fn try_access(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        reference_id: u64,
    ) -> Option<MemAccessResult> {
        let line = addr.line();
        match kind {
            AccessKind::Ifetch => {
                // SAFETY: exclusive access per `MemorySystem::new_lane`.
                let l1i = unsafe { &mut *self.l1i };
                if !l1i.contains(line) {
                    return None;
                }
                self.l1i_accesses += 1;
                self.l1i_hits += 1;
                let _ = l1i.access(line);
                Some(MemAccessResult {
                    latency: self.l1i_latency,
                    served_by: ServedBy::L1,
                    l1_hit: true,
                })
            }
            AccessKind::Load | AccessKind::Store => {
                // SAFETY: exclusive access per `MemorySystem::new_lane`.
                let (l1d, prefetcher) = unsafe { (&mut *self.l1d, &mut *self.prefetcher) };
                let is_write = kind.is_write();
                match l1d.lookup(line) {
                    Some(&state) if !is_write || state == MoesiState::Modified => {}
                    _ => return None,
                }
                if self.prefetcher_enabled && prefetcher.would_predict(reference_id, addr) {
                    // Training on this access would emit prefetches, whose
                    // fills touch the shared hierarchy — defer to the full
                    // path so the fills land at the access's committed
                    // position in global order.
                    return None;
                }
                self.l1d_accesses += 1;
                self.l1d_hits += 1;
                // Same single tag-array access as the full path's hit case
                // (recency and the array's own counters move identically).
                // A store hit is Modified-only here, so the full path's
                // silent-upgrade write and directory update are both no-ops.
                let _ = l1d.access(line);
                if self.prefetcher_enabled {
                    // Keeps training in program order; `would_predict` just
                    // ruled out any predictions.
                    let predictions = prefetcher.train(reference_id, addr);
                    debug_assert!(predictions.is_empty());
                }
                Some(MemAccessResult {
                    latency: self.l1d_latency,
                    served_by: ServedBy::L1,
                    l1_hit: true,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::small(4))
    }

    #[test]
    fn config_constructors_match_table1() {
        let cfg = MemorySystemConfig::isca2015(64);
        assert_eq!(cfg.l1d.size, ByteSize::kib(32));
        assert_eq!(cfg.l2_slice.size, ByteSize::kib(256));
        assert_eq!(cfg.l1d.latency, Cycle::new(2));
        assert_eq!(cfg.l2_slice.latency, Cycle::new(15));
        let base = MemorySystemConfig::cache_baseline(64);
        assert_eq!(base.l1d.size, ByteSize::kib(64));
        assert_eq!(base.l1d.latency, Cycle::new(2));
    }

    #[test]
    fn load_miss_then_hit() {
        let mut m = small_system();
        let a = Addr::new(0x4_0000);
        let miss = m.access(CoreId::new(0), a, AccessKind::Load, MessageClass::Read, 1);
        assert!(!miss.l1_hit);
        assert_eq!(miss.served_by, ServedBy::Dram);
        let hit = m.access(CoreId::new(0), a, AccessKind::Load, MessageClass::Read, 1);
        assert!(hit.l1_hit);
        assert_eq!(hit.served_by, ServedBy::L1);
        assert_eq!(hit.latency, Cycle::new(2));
    }

    #[test]
    fn second_core_hits_in_l2() {
        let mut m = small_system();
        let a = Addr::new(0x8_0000);
        let _ = m.access(CoreId::new(0), a, AccessKind::Load, MessageClass::Read, 1);
        let r = m.access(CoreId::new(1), a, AccessKind::Load, MessageClass::Read, 1);
        assert!(!r.l1_hit);
        assert_eq!(r.served_by, ServedBy::L2);
    }

    #[test]
    fn dirty_line_is_forwarded_from_remote_l1() {
        let mut m = small_system();
        let a = Addr::new(0xc_0000);
        let _ = m.access(CoreId::new(0), a, AccessKind::Store, MessageClass::Write, 1);
        assert_eq!(m.l1_state(CoreId::new(0), a.line()), MoesiState::Modified);
        let r = m.access(CoreId::new(2), a, AccessKind::Load, MessageClass::Read, 2);
        assert_eq!(r.served_by, ServedBy::RemoteL1);
        // The old owner keeps an Owned copy after forwarding a read.
        assert_eq!(m.l1_state(CoreId::new(0), a.line()), MoesiState::Owned);
    }

    #[test]
    fn store_invalidates_other_sharers() {
        let mut m = small_system();
        let a = Addr::new(0x10_0000);
        let _ = m.access(CoreId::new(0), a, AccessKind::Load, MessageClass::Read, 1);
        let _ = m.access(CoreId::new(1), a, AccessKind::Load, MessageClass::Read, 1);
        let _ = m.access(CoreId::new(2), a, AccessKind::Store, MessageClass::Write, 1);
        assert_eq!(m.l1_state(CoreId::new(0), a.line()), MoesiState::Invalid);
        assert_eq!(m.l1_state(CoreId::new(1), a.line()), MoesiState::Invalid);
        assert_eq!(m.l1_state(CoreId::new(2), a.line()), MoesiState::Modified);
        assert!(m.counters().invalidations >= 2);
    }

    #[test]
    fn write_upgrade_on_shared_hit() {
        let mut m = small_system();
        let a = Addr::new(0x14_0000);
        let _ = m.access(CoreId::new(0), a, AccessKind::Load, MessageClass::Read, 1);
        let _ = m.access(CoreId::new(1), a, AccessKind::Load, MessageClass::Read, 1);
        // Core 0 hits its Shared copy with a store: requires an upgrade.
        let r = m.access(CoreId::new(0), a, AccessKind::Store, MessageClass::Write, 1);
        assert!(r.l1_hit);
        assert!(
            r.latency > Cycle::new(2),
            "upgrade must cost more than a plain hit"
        );
        assert_eq!(m.l1_state(CoreId::new(0), a.line()), MoesiState::Modified);
        assert_eq!(m.l1_state(CoreId::new(1), a.line()), MoesiState::Invalid);
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut m = small_system();
        let a = Addr::new(0x100);
        let first = m.access(
            CoreId::new(0),
            a,
            AccessKind::Ifetch,
            MessageClass::Ifetch,
            0,
        );
        let second = m.access(
            CoreId::new(0),
            a,
            AccessKind::Ifetch,
            MessageClass::Ifetch,
            0,
        );
        assert!(!first.l1_hit);
        assert!(second.l1_hit);
        assert!(m.noc().traffic().packets(MessageClass::Ifetch) > 0);
        assert_eq!(m.counters().l1i_accesses, 2);
    }

    #[test]
    fn dma_get_reads_dirty_copy_from_cache() {
        let mut m = small_system();
        let a = Addr::new(0x20_0000);
        let _ = m.access(CoreId::new(3), a, AccessKind::Store, MessageClass::Write, 1);
        let before = m.counters().forwards;
        let lat = m.dma_get_line(CoreId::new(0), a.line());
        assert!(lat > Cycle::ZERO);
        assert_eq!(
            m.counters().forwards,
            before + 1,
            "dma-get must snoop the dirty L1 copy"
        );
        assert!(m.noc().traffic().packets(MessageClass::Dma) > 0);
        // The owner keeps its copy: dma-get does not invalidate.
        assert!(m.l1_state(CoreId::new(3), a.line()).is_valid());
    }

    #[test]
    fn dma_put_invalidates_whole_hierarchy() {
        let mut m = small_system();
        let a = Addr::new(0x24_0000);
        let _ = m.access(CoreId::new(1), a, AccessKind::Load, MessageClass::Read, 1);
        let _ = m.access(CoreId::new(2), a, AccessKind::Load, MessageClass::Read, 1);
        assert!(m.is_cached(a.line()));
        let lat = m.dma_put_line(CoreId::new(0), a.line());
        assert!(lat > Cycle::ZERO);
        assert!(!m.is_cached(a.line()), "dma-put must invalidate caches");
        assert_eq!(m.counters().dma_line_writes, 1);
        assert_eq!(m.l1_state(CoreId::new(1), a.line()), MoesiState::Invalid);
    }

    #[test]
    fn dma_get_from_memory_when_uncached() {
        let mut m = small_system();
        let lat = m.dma_get_line(CoreId::new(0), Addr::new(0x30_0000).line());
        assert!(lat >= Cycle::new(200), "must include the DRAM latency");
        assert_eq!(m.counters().dma_line_reads, 1);
    }

    #[test]
    fn strided_stream_triggers_prefetches_and_pollution() {
        let mut m = small_system();
        // March through 512 lines with a unit stride from one core.
        for i in 0..512u64 {
            let addr = Addr::new(0x40_0000 + i * 64);
            let _ = m.access(
                CoreId::new(0),
                addr,
                AccessKind::Load,
                MessageClass::Read,
                7,
            );
        }
        assert!(
            m.counters().prefetches > 0,
            "stride prefetcher must kick in"
        );
        // The L1 only has 128 lines in the small config, so evictions happened.
        assert!(m.counters().l1d_accesses >= 512);
    }

    #[test]
    fn export_stats_has_core_counters() {
        let mut m = small_system();
        let _ = m.access(
            CoreId::new(0),
            Addr::new(0x1000),
            AccessKind::Load,
            MessageClass::Read,
            1,
        );
        let mut stats = StatRegistry::new();
        m.export_stats(&mut stats);
        assert_eq!(stats.count("mem.l1d.accesses"), 1);
        assert!(stats.contains("mem.l1d.hit_ratio"));
        assert!(stats.count("noc.total.packets") > 0);
    }

    #[test]
    fn home_slice_interleaves_lines() {
        let m = small_system();
        let homes: Vec<usize> = (0..8)
            .map(|i| m.home_slice(LineAddr::new(i)).index())
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    fn tracked_system() -> MemorySystem {
        let mut m = small_system();
        m.enable_value_tracking();
        m
    }

    #[test]
    fn value_tracking_is_off_by_default() {
        let m = small_system();
        assert!(!m.tracks_values());
        assert_eq!(m.read_word(CoreId::new(0), Addr::new(0x1000)), None);
        assert_eq!(m.value_image(), None);
    }

    #[test]
    fn stored_value_is_read_back_by_every_core() {
        let mut m = tracked_system();
        let a = Addr::new(0x40_0008);
        let _ = m.access(CoreId::new(0), a, AccessKind::Store, MessageClass::Write, 1);
        m.write_word(CoreId::new(0), a, 0xdead);
        assert_eq!(m.read_word(CoreId::new(0), a), Some(0xdead));
        // A remote core's load is served by a forward of the dirty copy.
        let _ = m.access(CoreId::new(2), a, AccessKind::Load, MessageClass::Read, 2);
        assert_eq!(m.read_word(CoreId::new(2), a), Some(0xdead));
        // Unwritten neighbours read zero.
        assert_eq!(m.read_word(CoreId::new(1), a + 8), Some(0));
    }

    #[test]
    fn dma_get_reads_the_dirty_cached_value() {
        let mut m = tracked_system();
        let a = Addr::new(0x50_0000);
        let _ = m.access(CoreId::new(3), a, AccessKind::Store, MessageClass::Write, 1);
        m.write_word(CoreId::new(3), a, 77);
        let (_, vals) = m.dma_get_line_valued(CoreId::new(0), a.line());
        assert_eq!(
            vals.expect("tracking on")[0],
            77,
            "dma-get must snoop the dirty copy"
        );
    }

    #[test]
    fn dma_put_updates_memory_and_drops_cached_values() {
        let mut m = tracked_system();
        let a = Addr::new(0x60_0000);
        let _ = m.access(CoreId::new(1), a, AccessKind::Store, MessageClass::Write, 1);
        m.write_word(CoreId::new(1), a, 5);
        let mut words = [None; WORDS_PER_LINE];
        words[0] = Some(42);
        let _ = m.dma_put_line_valued(CoreId::new(0), a.line(), Some(&words));
        assert!(!m.is_cached(a.line()));
        assert_eq!(m.read_word(CoreId::new(1), a), Some(42));
        assert_eq!(
            m.read_word(CoreId::new(1), a + 8),
            Some(0),
            "masked words untouched"
        );
    }

    #[test]
    fn value_image_reflects_dirty_copies() {
        let mut m = tracked_system();
        let a = Addr::new(0x70_0000);
        let _ = m.access(CoreId::new(0), a, AccessKind::Store, MessageClass::Write, 1);
        m.write_word(CoreId::new(0), a, 9);
        let image = m.value_image().expect("tracking on");
        assert_eq!(image.get(&a.raw()).copied(), Some(9));
        assert!(
            !image.contains_key(&(a.raw() + 8)),
            "zero words stay sparse"
        );
    }

    #[test]
    fn values_survive_l1_eviction_chains() {
        let mut m = tracked_system();
        // Write one word per line across far more lines than the small L1
        // holds (128 lines), forcing write-backs through L2 and DRAM.
        let lines = 4096u64;
        for i in 0..lines {
            let a = Addr::new(0x100_0000 + i * 64);
            let _ = m.access(CoreId::new(0), a, AccessKind::Store, MessageClass::Write, 1);
            m.write_word(CoreId::new(0), a, i + 1);
        }
        for i in (0..lines).step_by(97) {
            let a = Addr::new(0x100_0000 + i * 64);
            assert_eq!(m.read_word(CoreId::new(1), a), Some(i + 1), "line {i}");
        }
    }

    #[test]
    fn latency_attribution_is_a_pure_observer() {
        let mut plain = small_system();
        let mut attributed = small_system();
        attributed.enable_latency_attribution();
        assert!(attributed.attributes_latency());
        for i in 0..64u64 {
            let a = Addr::new(0x200_0000 + i * 64);
            let kind = if i % 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let class = if kind.is_write() {
                MessageClass::Write
            } else {
                MessageClass::Read
            };
            let core = CoreId::new((i % 4) as usize);
            let p = plain.access(core, a, kind, class, i);
            let q = attributed.access(core, a, kind, class, i);
            assert_eq!(p.latency, q.latency, "access {i}");
            assert_eq!(p.served_by, q.served_by, "access {i}");
            // Drained or not, accumulation never leaks into timing; a
            // non-attributing system always drains zero.
            assert_eq!(plain.take_attributed_queue(), Cycle::ZERO);
            let _ = attributed.take_attributed_queue();
        }
        assert_eq!(
            plain.counters().dram_accesses,
            attributed.counters().dram_accesses
        );
    }

    #[test]
    fn attributed_queue_drains_once() {
        let mut cfg = MemorySystemConfig::small(4);
        cfg.noc.model = noc::NocModel::DiscreteEvent;
        let mut m = MemorySystem::new(cfg);
        m.enable_latency_attribution();
        // Back-to-back misses at clock zero share links, so the DES backend
        // measures real queueing on at least one demand leg.
        let mut total = Cycle::ZERO;
        for i in 0..32u64 {
            let a = Addr::new(0x300_0000 + i * 64);
            let _ = m.access(CoreId::new(0), a, AccessKind::Load, MessageClass::Read, 1);
            total += m.take_attributed_queue();
        }
        assert!(total > Cycle::ZERO, "DES demand legs saw no queueing");
        assert_eq!(m.take_attributed_queue(), Cycle::ZERO, "drain resets");
    }
}
