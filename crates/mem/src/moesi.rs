//! MOESI coherence states and directory entries.
//!
//! The baseline machine keeps its caches coherent with a "real MOESI with
//! blocking states" directory protocol (Table 1).  The simulator tracks, for
//! every line present in the shared L2, which private L1 caches hold a copy
//! and in which state, so that reads, writes, write-backs and the DMA
//! transfers of the hybrid memory system generate the correct forwarding,
//! invalidation and acknowledgement traffic.

use std::fmt;

use serde::{Deserialize, Serialize};
use simkernel::CoreId;

/// The five MOESI states of a cached line (plus Invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MoesiState {
    /// Dirty, exclusive: this cache owns the only valid copy.
    Modified,
    /// Dirty, shared: this cache must supply data and eventually write back.
    Owned,
    /// Clean, exclusive.
    Exclusive,
    /// Clean, shared.
    Shared,
    /// Not present.
    #[default]
    Invalid,
}

impl MoesiState {
    /// Returns `true` if the state carries ownership (dirty data).
    pub fn is_dirty(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Owned)
    }

    /// Returns `true` if a store can proceed without further coherence actions.
    pub fn can_write_silently(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Exclusive)
    }

    /// Returns `true` if the line is present in some valid state.
    pub fn is_valid(self) -> bool {
        !matches!(self, MoesiState::Invalid)
    }
}

impl fmt::Display for MoesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MoesiState::Modified => "M",
            MoesiState::Owned => "O",
            MoesiState::Exclusive => "E",
            MoesiState::Shared => "S",
            MoesiState::Invalid => "I",
        };
        f.write_str(s)
    }
}

/// Which private caches hold a line: one bit per core.
///
/// The paper's machine is 64 cores, so the common representation is a
/// single word.  The parallel engine's big meshes (256–1024 cores) promote
/// the set to a boxed multi-word bitmap on the first sharer past core 63;
/// every ≤64-core configuration only ever touches the narrow form, so the
/// wide path costs nothing where the goldens pin behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum SharerSet {
    /// One `u64`, bit per core — cores 0..64.
    Narrow(u64),
    /// One word per 64 cores, grown on demand.
    Wide(Box<[u64]>),
}

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::Narrow(0)
    }
}

impl SharerSet {
    fn insert(&mut self, idx: usize) {
        match self {
            SharerSet::Narrow(bits) if idx < 64 => *bits |= 1u64 << idx,
            SharerSet::Narrow(bits) => {
                let mut words = vec![0u64; idx / 64 + 1];
                words[0] = *bits;
                words[idx / 64] |= 1u64 << (idx % 64);
                *self = SharerSet::Wide(words.into_boxed_slice());
            }
            SharerSet::Wide(words) => {
                if idx / 64 >= words.len() {
                    let mut grown = vec![0u64; idx / 64 + 1];
                    grown[..words.len()].copy_from_slice(words);
                    *words = grown.into_boxed_slice();
                }
                words[idx / 64] |= 1u64 << (idx % 64);
            }
        }
    }

    fn remove(&mut self, idx: usize) {
        match self {
            SharerSet::Narrow(bits) => {
                if idx < 64 {
                    *bits &= !(1u64 << idx);
                }
            }
            SharerSet::Wide(words) => {
                if let Some(word) = words.get_mut(idx / 64) {
                    *word &= !(1u64 << (idx % 64));
                }
            }
        }
    }

    fn contains(&self, idx: usize) -> bool {
        let words = self.words();
        words
            .get(idx / 64)
            .is_some_and(|w| (w >> (idx % 64)) & 1 == 1)
    }

    fn words(&self) -> &[u64] {
        match self {
            SharerSet::Narrow(bits) => std::slice::from_ref(bits),
            SharerSet::Wide(words) => words,
        }
    }

    fn count(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| (bits >> b) & 1 == 1)
                .map(move |b| w * 64 + b)
        })
    }
}

/// Directory bookkeeping for one line of the shared L2.
///
/// Tracks which L1 caches hold the line (a sharer bit-vector: one word up
/// to the paper's 64-core machine, a multi-word bitmap on the bigger
/// parallel-engine meshes), which of them — if any — owns a dirty copy, and
/// whether the L2's own copy is dirty with respect to memory.
///
/// # Example
///
/// ```
/// use mem::{DirectoryEntry, MoesiState};
/// use simkernel::CoreId;
///
/// let mut dir = DirectoryEntry::new();
/// dir.add_sharer(CoreId::new(3), MoesiState::Exclusive);
/// assert_eq!(dir.owner(), Some(CoreId::new(3)));
/// dir.add_sharer(CoreId::new(5), MoesiState::Shared);
/// assert_eq!(dir.sharer_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DirectoryEntry {
    sharers: SharerSet,
    owner: Option<CoreId>,
    owner_state: MoesiState,
    /// Whether the L2 copy is newer than main memory.
    pub l2_dirty: bool,
}

impl DirectoryEntry {
    /// Creates an entry with no sharers and a clean L2 copy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a private-cache sharer in the given state.
    ///
    /// A `Modified`, `Owned` or `Exclusive` state makes that core the owner.
    pub fn add_sharer(&mut self, core: CoreId, state: MoesiState) {
        self.sharers.insert(core.index());
        if matches!(
            state,
            MoesiState::Modified | MoesiState::Owned | MoesiState::Exclusive
        ) {
            self.owner = Some(core);
            self.owner_state = state;
        }
    }

    /// Removes a sharer (e.g. on an L1 eviction or invalidation).
    pub fn remove_sharer(&mut self, core: CoreId) {
        self.sharers.remove(core.index());
        if self.owner == Some(core) {
            self.owner = None;
            self.owner_state = MoesiState::Invalid;
        }
    }

    /// Returns `true` if the core currently holds a copy.
    pub fn is_sharer(&self, core: CoreId) -> bool {
        self.sharers.contains(core.index())
    }

    /// The core owning a dirty/exclusive copy, if any.
    pub fn owner(&self) -> Option<CoreId> {
        self.owner
    }

    /// The MOESI state of the owner's copy ([`MoesiState::Invalid`] if none).
    pub fn owner_state(&self) -> MoesiState {
        if self.owner.is_some() {
            self.owner_state
        } else {
            MoesiState::Invalid
        }
    }

    /// Returns `true` if some L1 holds a dirty copy that must be forwarded.
    pub fn has_dirty_owner(&self) -> bool {
        self.owner.is_some() && self.owner_state.is_dirty()
    }

    /// Number of private caches holding the line.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count()
    }

    /// Iterates over the sharer cores.
    pub fn sharers(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.sharers.iter().map(CoreId::new)
    }

    /// Iterates over the sharers other than `except`.
    pub fn sharers_except(&self, except: CoreId) -> impl Iterator<Item = CoreId> + '_ {
        self.sharers().filter(move |c| *c != except)
    }

    /// Removes every sharer and the owner, returning how many there were.
    pub fn clear_sharers(&mut self) -> u32 {
        let n = self.sharer_count();
        self.sharers = SharerSet::default();
        self.owner = None;
        self.owner_state = MoesiState::Invalid;
        n
    }

    /// Returns `true` if no private cache holds the line.
    pub fn is_unshared(&self) -> bool {
        self.sharers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(MoesiState::Modified.is_dirty());
        assert!(MoesiState::Owned.is_dirty());
        assert!(!MoesiState::Exclusive.is_dirty());
        assert!(MoesiState::Modified.can_write_silently());
        assert!(MoesiState::Exclusive.can_write_silently());
        assert!(!MoesiState::Shared.can_write_silently());
        assert!(!MoesiState::Invalid.is_valid());
        assert!(MoesiState::Shared.is_valid());
        assert_eq!(MoesiState::Owned.to_string(), "O");
        assert_eq!(MoesiState::default(), MoesiState::Invalid);
    }

    #[test]
    fn add_and_remove_sharers() {
        let mut d = DirectoryEntry::new();
        assert!(d.is_unshared());
        d.add_sharer(CoreId::new(0), MoesiState::Shared);
        d.add_sharer(CoreId::new(63), MoesiState::Shared);
        assert_eq!(d.sharer_count(), 2);
        assert!(d.is_sharer(CoreId::new(0)));
        assert!(d.is_sharer(CoreId::new(63)));
        assert!(!d.is_sharer(CoreId::new(5)));
        assert_eq!(d.owner(), None);
        d.remove_sharer(CoreId::new(0));
        assert_eq!(d.sharer_count(), 1);
        let all: Vec<_> = d.sharers().collect();
        assert_eq!(all, vec![CoreId::new(63)]);
    }

    #[test]
    fn ownership_tracking() {
        let mut d = DirectoryEntry::new();
        d.add_sharer(CoreId::new(7), MoesiState::Modified);
        assert_eq!(d.owner(), Some(CoreId::new(7)));
        assert!(d.has_dirty_owner());
        assert_eq!(d.owner_state(), MoesiState::Modified);

        // A second reader demotes nothing automatically; the hierarchy layer
        // decides the transition, but removing the owner clears it.
        d.add_sharer(CoreId::new(8), MoesiState::Shared);
        assert_eq!(d.owner(), Some(CoreId::new(7)));
        d.remove_sharer(CoreId::new(7));
        assert_eq!(d.owner(), None);
        assert!(!d.has_dirty_owner());
        assert_eq!(d.owner_state(), MoesiState::Invalid);
    }

    #[test]
    fn exclusive_is_owner_but_clean() {
        let mut d = DirectoryEntry::new();
        d.add_sharer(CoreId::new(1), MoesiState::Exclusive);
        assert_eq!(d.owner(), Some(CoreId::new(1)));
        assert!(!d.has_dirty_owner());
    }

    #[test]
    fn clear_sharers_reports_count() {
        let mut d = DirectoryEntry::new();
        for i in 0..5 {
            d.add_sharer(CoreId::new(i), MoesiState::Shared);
        }
        assert_eq!(d.clear_sharers(), 5);
        assert!(d.is_unshared());
        assert_eq!(d.clear_sharers(), 0);
    }

    #[test]
    fn sharers_except_filters_requestor() {
        let mut d = DirectoryEntry::new();
        d.add_sharer(CoreId::new(1), MoesiState::Shared);
        d.add_sharer(CoreId::new(2), MoesiState::Shared);
        d.add_sharer(CoreId::new(3), MoesiState::Shared);
        let others: Vec<_> = d.sharers_except(CoreId::new(2)).collect();
        assert_eq!(others, vec![CoreId::new(1), CoreId::new(3)]);
    }

    #[test]
    fn wide_meshes_promote_the_sharer_vector() {
        // A sharer past core 63 promotes the set to the multi-word bitmap
        // without disturbing the narrow sharers already recorded.
        let mut d = DirectoryEntry::new();
        d.add_sharer(CoreId::new(3), MoesiState::Shared);
        d.add_sharer(CoreId::new(64), MoesiState::Shared);
        d.add_sharer(CoreId::new(1023), MoesiState::Modified);
        assert_eq!(d.sharer_count(), 3);
        assert!(d.is_sharer(CoreId::new(3)));
        assert!(d.is_sharer(CoreId::new(64)));
        assert!(d.is_sharer(CoreId::new(1023)));
        assert!(!d.is_sharer(CoreId::new(512)));
        assert_eq!(d.owner(), Some(CoreId::new(1023)));
        let all: Vec<_> = d.sharers().collect();
        assert_eq!(
            all,
            vec![CoreId::new(3), CoreId::new(64), CoreId::new(1023)]
        );
        d.remove_sharer(CoreId::new(64));
        assert_eq!(d.sharer_count(), 2);
        assert_eq!(d.clear_sharers(), 2);
        assert!(d.is_unshared());
    }
}
