//! Per-reference stride prefetcher for the L1 data cache.
//!
//! Table 1 of the paper gives the cache-based baseline a stride prefetcher in
//! the L1 data cache.  The paper's evaluation observes that the prefetcher
//! cannot always keep up with the many concurrent strided streams of the
//! NAS benchmarks and that the prefetched data causes conflict misses — both
//! effects emerge naturally from this model because the prefetched lines are
//! really inserted in the (finite, 4-way) L1 tag array of [`crate::hierarchy`].

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, LineAddr};

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetcherConfig {
    /// Whether the prefetcher is active.
    pub enabled: bool,
    /// Number of distinct streams (reference PCs) tracked.
    pub table_entries: usize,
    /// How many consecutive accesses with the same stride are needed before
    /// prefetches are issued.
    pub confidence_threshold: u32,
    /// How many lines ahead of the current access are prefetched.
    pub degree: u32,
}

impl PrefetcherConfig {
    /// The baseline configuration used in the evaluation.
    pub fn isca2015() -> Self {
        PrefetcherConfig {
            enabled: true,
            table_entries: 64,
            confidence_threshold: 2,
            degree: 2,
        }
    }

    /// A disabled prefetcher (used for the SPM side of the hybrid system).
    pub fn disabled() -> Self {
        PrefetcherConfig {
            enabled: false,
            table_entries: 0,
            confidence_threshold: 0,
            degree: 0,
        }
    }
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        Self::isca2015()
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StreamEntry {
    last_addr: Addr,
    stride: i64,
    confidence: u32,
    lru: u64,
}

/// A reference-indexed stride prefetcher.
///
/// The prefetcher is trained with `(reference id, address)` pairs — the
/// reference id plays the role of the program counter of the memory
/// instruction.  Once a stream reaches the confidence threshold, each
/// training access returns the next `degree` line addresses to prefetch.
///
/// # Example
///
/// ```
/// use mem::{Addr, PrefetcherConfig, StridePrefetcher};
///
/// let mut pf = StridePrefetcher::new(PrefetcherConfig::isca2015());
/// // A unit-stride stream of 8-byte elements.
/// let mut prefetches = Vec::new();
/// for i in 0..32u64 {
///     prefetches.extend(pf.train(1, Addr::new(0x1000 + i * 8)));
/// }
/// assert!(!prefetches.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: PrefetcherConfig,
    /// `(reference id, stream)` pairs, linearly scanned: the table is small
    /// (64 entries) and hit on every demand access, where a scan over a
    /// dense array beats hashing the key.  Eviction picks the minimum `lru`
    /// tick, which is unique, so the scan order never affects behaviour.
    table: Vec<(u64, StreamEntry)>,
    tick: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with the given configuration.
    pub fn new(config: PrefetcherConfig) -> Self {
        StridePrefetcher {
            table: Vec::with_capacity(config.table_entries),
            config,
            tick: 0,
            issued: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PrefetcherConfig {
        &self.config
    }

    /// Number of prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Non-mutating twin of [`StridePrefetcher::train`]: would training with
    /// this access return any prefetch lines?
    ///
    /// The parallel engine classifies an access as core-local only when this
    /// is false — prefetch fills go through the shared hierarchy, so an
    /// access about to issue them must run on the full path instead.  The
    /// answer replays `train`'s exact confidence/stride/line-dedup logic
    /// against the current table state without touching it.
    pub fn would_predict(&self, reference_id: u64, addr: Addr) -> bool {
        if !self.config.enabled {
            return false;
        }
        let Some((_, entry)) = self.table.iter().find(|(id, _)| *id == reference_id) else {
            return false;
        };
        let new_stride = addr.raw() as i64 - entry.last_addr.raw() as i64;
        let (confidence, stride) = if new_stride == entry.stride && new_stride != 0 {
            (entry.confidence.saturating_add(1), entry.stride)
        } else {
            (1, new_stride)
        };
        if confidence < self.config.confidence_threshold || stride == 0 {
            return false;
        }
        let current_line = addr.line();
        for d in 1..=self.config.degree as i64 {
            let target = addr.raw() as i64 + stride * d;
            if target <= 0 {
                break;
            }
            // `train` pushes (and returns) the first line that differs from
            // the demand line; its `last_line` chain only advances on a
            // push, so one differing line is enough to answer.
            if Addr::new(target as u64).line() != current_line {
                return true;
            }
        }
        false
    }

    /// Trains the prefetcher with one demand access and returns the lines to
    /// prefetch (possibly empty).
    pub fn train(&mut self, reference_id: u64, addr: Addr) -> Vec<LineAddr> {
        if !self.config.enabled {
            return Vec::new();
        }
        self.tick += 1;
        let tick = self.tick;

        let hit = self
            .table
            .iter_mut()
            .find(|(id, _)| *id == reference_id)
            .map(|(_, e)| e);
        let (stride_confirmed, stride) = match hit {
            Some(entry) => {
                let new_stride = addr.raw() as i64 - entry.last_addr.raw() as i64;
                if new_stride == entry.stride && new_stride != 0 {
                    entry.confidence = entry.confidence.saturating_add(1);
                } else {
                    entry.stride = new_stride;
                    entry.confidence = 1;
                }
                entry.last_addr = addr;
                entry.lru = tick;
                (
                    entry.confidence >= self.config.confidence_threshold,
                    entry.stride,
                )
            }
            None => {
                if self.table.len() >= self.config.table_entries {
                    // Evict the least recently used stream.
                    if let Some(victim) = self
                        .table
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, e))| e.lru)
                        .map(|(i, _)| i)
                    {
                        self.table.swap_remove(victim);
                    }
                }
                self.table.push((
                    reference_id,
                    StreamEntry {
                        last_addr: addr,
                        stride: 0,
                        confidence: 0,
                        lru: tick,
                    },
                ));
                (false, 0)
            }
        };

        if !stride_confirmed || stride == 0 {
            return Vec::new();
        }

        // Prefetch `degree` lines ahead along the stream, skipping duplicates
        // that fall in the same line as the demand access.
        let mut out = Vec::with_capacity(self.config.degree as usize);
        let current_line = addr.line();
        let mut last_line = current_line;
        for d in 1..=self.config.degree as i64 {
            let target = addr.raw() as i64 + stride * d;
            if target <= 0 {
                break;
            }
            let line = Addr::new(target as u64).line();
            if line != current_line && line != last_line {
                out.push(line);
                last_line = line;
            }
        }
        self.issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::disabled());
        for i in 0..100u64 {
            assert!(pf.train(0, Addr::new(i * 64)).is_empty());
        }
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn unit_stride_stream_triggers_prefetches() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::isca2015());
        let mut total = 0;
        for i in 0..64u64 {
            total += pf.train(42, Addr::new(0x10_0000 + i * 64)).len();
        }
        assert!(total > 0);
        assert_eq!(pf.issued() as usize, total);
    }

    #[test]
    fn prefetches_follow_the_stride_direction() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::isca2015());
        let mut last = Vec::new();
        for i in 0..8u64 {
            last = pf.train(1, Addr::new(0x4000 + i * 128));
        }
        // Stride 128 bytes = 2 lines; prefetches must be ahead of the access.
        let current = Addr::new(0x4000 + 7 * 128).line();
        for line in &last {
            assert!(line.number() > current.number());
        }
    }

    #[test]
    fn random_accesses_do_not_trigger_prefetches() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::isca2015());
        let addrs = [
            0x1000u64, 0x8000, 0x2040, 0x9010, 0x3300, 0x100, 0x7777, 0x1234,
        ];
        let mut total = 0;
        for (i, a) in addrs.iter().cycle().take(64).enumerate() {
            total += pf.train(9, Addr::new(a + i as u64)).len();
        }
        assert_eq!(total, 0, "irregular stream must not reach confidence");
    }

    #[test]
    fn small_strides_within_a_line_do_not_spam_prefetches() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig::isca2015());
        let mut total = 0;
        for i in 0..16u64 {
            total += pf.train(5, Addr::new(0x2000 + i * 4)).len();
        }
        // A 4-byte stride only crosses a line every 16 accesses, so very few
        // prefetches should be issued.
        assert!(
            total <= 4,
            "got {total} prefetches for an intra-line stride"
        );
    }

    #[test]
    fn would_predict_agrees_with_train_exactly() {
        // Over a mixed stream (regular strides, direction flips, irregular
        // jumps, several references), the non-mutating probe must answer
        // exactly what the subsequent training access returns.
        let mut pf = StridePrefetcher::new(PrefetcherConfig::isca2015());
        let addrs: Vec<(u64, u64)> = (0..256u64)
            .map(|i| match i % 7 {
                0..=2 => (1, 0x10_0000 + i * 64),
                3 | 4 => (2, 0x40_0000 + i * 128),
                5 => (3, 0x1234 + (i * i * 37) % 0x8000),
                _ => (1, 0x20_0000u64.wrapping_sub(i * 64)),
            })
            .collect();
        for (reference, addr) in addrs {
            let addr = Addr::new(addr);
            let predicted = pf.would_predict(reference, addr);
            let issued = pf.train(reference, addr);
            assert_eq!(
                predicted,
                !issued.is_empty(),
                "probe and train disagree at reference {reference} addr {addr:?}"
            );
        }
    }

    #[test]
    fn table_eviction_keeps_working_set_bounded() {
        let mut pf = StridePrefetcher::new(PrefetcherConfig {
            table_entries: 4,
            ..PrefetcherConfig::isca2015()
        });
        for ref_id in 0..100u64 {
            let _ = pf.train(ref_id, Addr::new(ref_id * 0x1000));
        }
        // Table must never exceed its capacity (checked indirectly: training a
        // brand-new stream still works and does not panic).
        let v = pf.train(1000, Addr::new(0x50_0000));
        assert!(v.is_empty());
    }
}
