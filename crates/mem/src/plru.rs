//! Tree pseudo-LRU replacement state.
//!
//! All caches in the paper's configuration (L1 I/D, L2, and the filter of the
//! proposed coherence protocol) use pseudo-LRU replacement (Table 1).  The
//! classic tree-PLRU scheme is implemented here for any power-of-two number
//! of ways.

use serde::{Deserialize, Serialize};

/// Tree pseudo-LRU state for one cache set.
///
/// The tree is stored as a flat bit array: node `0` is the root, node `i` has
/// children `2i + 1` and `2i + 2`.  A bit value of `false` means "the LRU
/// side is the left subtree", `true` means "the LRU side is the right
/// subtree".
///
/// # Example
///
/// ```
/// use mem::plru::TreePlru;
///
/// let mut plru = TreePlru::new(4);
/// plru.touch(0);
/// plru.touch(1);
/// plru.touch(2);
/// plru.touch(3);
/// // After touching every way in order, way 0 is the pseudo-LRU victim.
/// assert_eq!(plru.victim(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreePlru {
    ways: usize,
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates replacement state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or not a power of two.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways > 0 && ways.is_power_of_two(),
            "ways must be a power of two, got {ways}"
        );
        TreePlru {
            ways,
            bits: vec![false; ways.saturating_sub(1)],
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Marks `way` as most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        assert!(
            way < self.ways,
            "way {way} out of range (ways = {})",
            self.ways
        );
        if self.ways == 1 {
            return;
        }
        // Walk from the root towards the leaf for `way`, pointing every
        // traversed node away from the path (so the path becomes MRU).
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Went left: LRU side becomes the right subtree.
                self.bits[node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                // Went right: LRU side becomes the left subtree.
                self.bits[node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Returns the pseudo-LRU victim way without modifying the state.
    pub fn victim(&self) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                // LRU side is the right subtree.
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_way_is_trivial() {
        let mut p = TreePlru::new(1);
        assert_eq!(p.victim(), 0);
        p.touch(0);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn victim_avoids_recently_touched_ways() {
        let mut p = TreePlru::new(4);
        for way in 0..4 {
            p.touch(way);
            assert_ne!(p.victim(), way, "victim must not be the way just touched");
        }
    }

    #[test]
    fn sequential_touch_cycles_through_victims() {
        let mut p = TreePlru::new(8);
        // Touch every way once; the victim should then be way 0 (the oldest
        // path in the tree approximation).
        for way in 0..8 {
            p.touch(way);
        }
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn repeated_touch_of_one_way_protects_it() {
        let mut p = TreePlru::new(4);
        for _ in 0..100 {
            p.touch(2);
            assert_ne!(p.victim(), 2);
        }
    }

    #[test]
    fn plru_approximates_lru_on_scan() {
        // A scan over 16 distinct blocks in a 4-way set must keep evicting;
        // this just checks the victim is always a valid way.
        let mut p = TreePlru::new(4);
        for i in 0..64 {
            let v = p.victim();
            assert!(v < 4);
            p.touch(i % 4);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_ways_panics() {
        let _ = TreePlru::new(3);
    }

    #[test]
    #[should_panic]
    fn touch_out_of_range_panics() {
        TreePlru::new(4).touch(4);
    }
}
