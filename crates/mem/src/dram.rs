//! Main-memory (DRAM) timing model.
//!
//! Off-chip memory is reached through memory controllers placed at the
//! corners of the mesh.  The model is deliberately simple: a fixed access
//! latency plus a bandwidth-driven queueing term per controller.  The paper's
//! benchmarks are mostly on-chip once the SPMs or caches are warm, so a
//! first-order DRAM model is sufficient to preserve the reported trends.

use serde::{Deserialize, Serialize};
use simkernel::{Cycle, NodeId};

use crate::addr::LineAddr;

/// Configuration of the DRAM / memory-controller model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Fixed access latency (row activation + column access + transfer).
    pub access_latency: Cycle,
    /// Number of memory controllers (placed at mesh corners).
    pub controllers: usize,
    /// Lines each controller can serve per 1000 cycles before queueing grows.
    pub lines_per_kcycle: u64,
    /// Additional queueing latency applied per outstanding line above the
    /// bandwidth limit.
    pub queue_penalty: Cycle,
}

impl DramConfig {
    /// A 200-cycle (100 ns at 2 GHz) main memory with four controllers.
    pub fn isca2015() -> Self {
        DramConfig {
            access_latency: Cycle::new(200),
            controllers: 4,
            lines_per_kcycle: 250,
            queue_penalty: Cycle::new(8),
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::isca2015()
    }
}

/// The DRAM model: maps lines to controllers and returns access latencies.
///
/// # Example
///
/// ```
/// use mem::{DramConfig, DramModel, LineAddr};
///
/// let mut dram = DramModel::new(DramConfig::isca2015(), 64);
/// let lat = dram.access(LineAddr::new(42));
/// assert!(lat.as_u64() >= 200);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    controller_nodes: Vec<NodeId>,
    accesses_per_controller: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl DramModel {
    /// Creates the model for a mesh with `mesh_nodes` tiles.
    ///
    /// Controllers are attached to the first `controllers` corner-ish nodes
    /// (node 0, the last node, and the ends of the first row/column for the
    /// default four controllers).
    ///
    /// # Panics
    ///
    /// Panics if `controllers` is zero.
    pub fn new(config: DramConfig, mesh_nodes: usize) -> Self {
        assert!(
            config.controllers > 0,
            "need at least one memory controller"
        );
        let n = mesh_nodes.max(1);
        let side = (n as f64).sqrt().round().max(1.0) as usize;
        let candidates = [
            0,
            side.saturating_sub(1),
            n.saturating_sub(side),
            n.saturating_sub(1),
            n / 2,
            side / 2,
        ];
        let mut controller_nodes: Vec<NodeId> = Vec::new();
        for &c in candidates.iter() {
            let node = NodeId::new(c.min(n - 1));
            if !controller_nodes.contains(&node) {
                controller_nodes.push(node);
            }
            if controller_nodes.len() == config.controllers {
                break;
            }
        }
        while controller_nodes.len() < config.controllers {
            let node = NodeId::new(controller_nodes.len() % n);
            controller_nodes.push(node);
        }
        DramModel {
            accesses_per_controller: vec![0; config.controllers],
            controller_nodes,
            config,
            reads: 0,
            writes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The controller (by index) that owns a line, via address interleaving.
    pub fn controller_for(&self, line: LineAddr) -> usize {
        (line.number() % self.config.controllers as u64) as usize
    }

    /// The mesh node a controller is attached to.
    pub fn controller_node(&self, controller: usize) -> NodeId {
        self.controller_nodes[controller % self.controller_nodes.len()]
    }

    /// The mesh node serving a given line.
    pub fn node_for(&self, line: LineAddr) -> NodeId {
        self.controller_node(self.controller_for(line))
    }

    /// Performs a read access and returns its latency.
    pub fn access(&mut self, line: LineAddr) -> Cycle {
        self.reads += 1;
        self.access_inner(line)
    }

    /// Performs a write access (write-back or DMA put) and returns its latency.
    pub fn write(&mut self, line: LineAddr) -> Cycle {
        self.writes += 1;
        self.access_inner(line)
    }

    fn access_inner(&mut self, line: LineAddr) -> Cycle {
        let ctrl = self.controller_for(line);
        self.accesses_per_controller[ctrl] += 1;
        // Simple load-proportional queueing term: every `lines_per_kcycle`
        // accesses on the same controller add one `queue_penalty`.
        let backlog = self.accesses_per_controller[ctrl] / self.config.lines_per_kcycle.max(1);
        let queue = Cycle::new((backlog % 8) * self.config.queue_penalty.as_u64());
        self.config.access_latency + queue
    }

    /// Total number of read accesses.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total number of write accesses.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total accesses per controller (for balance checks).
    pub fn controller_accesses(&self) -> &[u64] {
        &self.accesses_per_controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_at_least_base() {
        let mut d = DramModel::new(DramConfig::isca2015(), 64);
        assert!(d.access(LineAddr::new(0)) >= Cycle::new(200));
        assert!(d.write(LineAddr::new(1)) >= Cycle::new(200));
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
    }

    #[test]
    fn lines_interleave_across_controllers() {
        let d = DramModel::new(DramConfig::isca2015(), 64);
        let mut seen = [false; 4];
        for i in 0..16 {
            seen[d.controller_for(LineAddr::new(i))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn controller_nodes_are_distinct_on_a_big_mesh() {
        let d = DramModel::new(DramConfig::isca2015(), 64);
        let nodes: Vec<_> = (0..4).map(|c| d.controller_node(c)).collect();
        let mut dedup = nodes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), nodes.len());
        // node_for agrees with controller_for
        let line = LineAddr::new(5);
        assert_eq!(d.node_for(line), d.controller_node(d.controller_for(line)));
    }

    #[test]
    fn tiny_mesh_still_works() {
        let d = DramModel::new(DramConfig::isca2015(), 1);
        assert_eq!(d.controller_node(0), NodeId::new(0));
        assert_eq!(d.node_for(LineAddr::new(3)), NodeId::new(0));
    }

    #[test]
    fn queueing_grows_with_load() {
        let mut d = DramModel::new(
            DramConfig {
                lines_per_kcycle: 10,
                ..DramConfig::isca2015()
            },
            64,
        );
        let first = d.access(LineAddr::new(0));
        let mut last = first;
        for _ in 0..30 {
            last = d.access(LineAddr::new(0));
        }
        assert!(last >= first);
        assert_eq!(d.controller_accesses().iter().sum::<u64>(), 31);
    }

    #[test]
    #[should_panic]
    fn zero_controllers_panics() {
        let _ = DramModel::new(
            DramConfig {
                controllers: 0,
                ..DramConfig::isca2015()
            },
            64,
        );
    }
}
