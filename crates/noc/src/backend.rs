//! The common surface both network models expose.
//!
//! [`NocBackend`] is what the rest of the simulator needs from an
//! interconnect: send a packet between two tiles and learn its latency,
//! account the traffic, and export statistics.  Two implementations exist —
//! the closed-form [`AnalyticNoc`](crate::network::AnalyticNoc) and the
//! discrete-event [`DesNoc`](crate::des::DesNoc) — and the
//! [`Noc`](crate::Noc) facade dispatches between them according to
//! [`NocModel`](crate::NocModel), so every experiment can run under either
//! model without code changes.

use simkernel::{Cycle, NodeId, StatRegistry};

use crate::network::NocConfig;
use crate::packet::MessageClass;
use crate::topology::MeshTopology;
use crate::traffic::TrafficAccountant;

/// A network model: latency computation plus traffic accounting.
pub trait NocBackend {
    /// The configuration in use.
    fn config(&self) -> &NocConfig;

    /// The mesh topology.
    fn topology(&self) -> &MeshTopology {
        &self.config().topology
    }

    /// Advances the model's notion of the current cycle.
    ///
    /// The discrete-event backend injects subsequent packets no earlier than
    /// this cycle; the analytic backend is memoryless and ignores it.  Time
    /// only moves forward: passing an earlier cycle is a no-op.
    fn advance_to(&mut self, now: Cycle);

    /// Sends one packet and returns its latency, recording the traffic.
    ///
    /// `payload_bytes` chooses between control packets (< 32 bytes: requests,
    /// acks, invalidations) and data packets (a cache line).
    fn send(&mut self, from: NodeId, to: NodeId, class: MessageClass, payload_bytes: u64) -> Cycle;

    /// Latency of a packet between two nodes *without* recording traffic
    /// or disturbing any queue state.
    ///
    /// Useful for "ideal" oracle models that must not perturb the network.
    /// The analytic backend includes its utilisation-driven contention term;
    /// the discrete-event backend answers with the zero-load latency, since
    /// an unsent packet occupies no links.
    fn latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle;

    /// Read access to the accumulated traffic.
    fn traffic(&self) -> &TrafficAccountant;

    /// Drains the accumulated traffic, leaving the accountant empty.
    fn take_traffic(&mut self) -> TrafficAccountant;

    /// Exports the backend's counters into a [`StatRegistry`].
    fn export_stats(&self, stats: &mut StatRegistry);

    /// Sends a request/response pair and returns the round-trip latency.
    fn round_trip(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Cycle {
        let there = self.send(from, to, class, request_bytes);
        let back = self.send(to, from, class, response_bytes);
        there + back
    }

    /// Broadcasts a control packet from `from` to every other node and
    /// collects one control response from each.
    ///
    /// Returns the latency until the *last* response arrives (the critical
    /// path of a filterDir broadcast, Figure 6b of the paper).
    fn broadcast_collect(
        &mut self,
        from: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> Cycle {
        let nodes = self.topology().nodes();
        let mut worst = Cycle::ZERO;
        for i in 0..nodes {
            let to = NodeId::new(i);
            if to == from {
                continue;
            }
            let out = self.send(from, to, class, payload_bytes);
            let back = self.send(to, from, class, CONTROL_RESPONSE_BYTES);
            worst = worst.max(out + back);
        }
        worst
    }
}

/// Size of the control response collected by a broadcast.
pub(crate) const CONTROL_RESPONSE_BYTES: u64 = 8;
