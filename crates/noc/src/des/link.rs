//! Per-link state of the discrete-event mesh.
//!
//! Every node owns four outgoing directed links (east, west, south, north);
//! a link exists only when its far endpoint is inside the mesh.  Each link
//! keeps one busy-until cycle per virtual channel — the FIFO occupancy the
//! analytic model folds into a single global ρ — plus the accumulated busy
//! cycles that turn into the measured per-link utilisation.

use simkernel::{Cycle, NodeId};

use crate::packet::NUM_VIRTUAL_CHANNELS;
use crate::topology::MeshTopology;

/// Outgoing directions of a mesh router, in link-index order.
const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

/// One directed link: per-virtual-channel busy-until cycles plus counters.
#[derive(Debug, Clone, Default)]
pub(crate) struct LinkState {
    /// The cycle from which each virtual channel can accept a new head flit.
    pub free_at: [Cycle; NUM_VIRTUAL_CHANNELS],
    /// Cycles the link input was occupied by flits, over all channels.
    pub busy_cycles: u64,
    /// Packets that traversed the link.
    pub packets: u64,
}

/// The directed links of a mesh, indexed `node × 4 + direction`.
#[derive(Debug, Clone)]
pub(crate) struct LinkGrid {
    topology: MeshTopology,
    links: Vec<LinkState>,
}

impl LinkGrid {
    pub(crate) fn new(topology: MeshTopology) -> Self {
        LinkGrid {
            topology,
            links: vec![LinkState::default(); topology.nodes() * 4],
        }
    }

    /// The index of the directed link from `from` to the adjacent node `to`.
    ///
    /// The event loop routes through [`LinkGrid::next_toward`]; this direct
    /// form remains as the test oracle for it.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are not mesh neighbours (XY routes only ever
    /// traverse neighbouring tiles).
    #[cfg(test)]
    pub(crate) fn index_between(&self, from: NodeId, to: NodeId) -> usize {
        let (fc, fr) = self.topology.coords(from);
        let (tc, tr) = self.topology.coords(to);
        let dir = match (tc as isize - fc as isize, tr as isize - fr as isize) {
            (1, 0) => EAST,
            (-1, 0) => WEST,
            (0, 1) => SOUTH,
            (0, -1) => NORTH,
            _ => panic!("nodes {from} and {to} are not mesh neighbours"),
        };
        from.index() * 4 + dir
    }

    /// The next XY hop from `at` toward `to` with the directed-link index it
    /// traverses, or `None` when the packet is already at its destination.
    ///
    /// One coordinate decomposition serves both the routing decision and the
    /// link index, so the event loop never materialises a route.
    #[inline]
    pub(crate) fn next_toward(&self, at: NodeId, to: NodeId) -> Option<(NodeId, usize)> {
        let (ac, ar) = self.topology.coords(at);
        let (tc, tr) = self.topology.coords(to);
        let (next, dir) = if ac < tc {
            (at.index() + 1, EAST)
        } else if ac > tc {
            (at.index() - 1, WEST)
        } else if ar < tr {
            (at.index() + self.topology.cols(), SOUTH)
        } else if ar > tr {
            (at.index() - self.topology.cols(), NORTH)
        } else {
            return None;
        };
        Some((NodeId::new(next), at.index() * 4 + dir))
    }

    pub(crate) fn state_mut(&mut self, index: usize) -> &mut LinkState {
        &mut self.links[index]
    }

    /// Number of directed links that physically exist in the mesh.
    pub(crate) fn physical_links(&self) -> usize {
        self.topology.directed_links()
    }

    /// Utilisation of every directed link over `elapsed` cycles, in link
    /// index order (links outside the mesh stay at zero forever).
    pub(crate) fn utilizations(&self, elapsed: Cycle) -> impl Iterator<Item = f64> + '_ {
        let denom = elapsed.as_u64().max(1) as f64;
        self.links.iter().map(move |l| l.busy_cycles as f64 / denom)
    }

    /// Total busy cycles over all links.
    pub(crate) fn total_busy_cycles(&self) -> u64 {
        self.links.iter().map(|l| l.busy_cycles).sum()
    }

    /// Cumulative busy cycles of every directed link, in link index order.
    pub(crate) fn busy_cycles_per_link(&self) -> impl Iterator<Item = u64> + '_ {
        self.links.iter().map(|l| l.busy_cycles)
    }

    /// Total packets over all links (one count per link traversed).
    pub(crate) fn total_link_traversals(&self) -> u64 {
        self.links.iter().map(|l| l.packets).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbour_links_have_distinct_indices() {
        let mesh = MeshTopology::new(3, 3);
        let grid = LinkGrid::new(mesh);
        let center = mesh.node_at(1, 1);
        let mut seen = std::collections::BTreeSet::new();
        for neighbour in [
            mesh.node_at(2, 1),
            mesh.node_at(0, 1),
            mesh.node_at(1, 2),
            mesh.node_at(1, 0),
        ] {
            assert!(seen.insert(grid.index_between(center, neighbour)));
        }
        // The reverse direction is a different link.
        assert_ne!(
            grid.index_between(center, mesh.node_at(2, 1)),
            grid.index_between(mesh.node_at(2, 1), center)
        );
    }

    #[test]
    #[should_panic]
    fn non_neighbours_panic() {
        let mesh = MeshTopology::new(3, 3);
        LinkGrid::new(mesh).index_between(mesh.node_at(0, 0), mesh.node_at(2, 0));
    }

    #[test]
    fn physical_link_count_matches_mesh() {
        assert_eq!(LinkGrid::new(MeshTopology::new(2, 2)).physical_links(), 8);
        assert_eq!(
            LinkGrid::new(MeshTopology::new(8, 8)).physical_links(),
            2 * (7 * 8 + 8 * 7)
        );
        assert_eq!(LinkGrid::new(MeshTopology::new(1, 1)).physical_links(), 0);
    }

    #[test]
    fn utilization_reflects_busy_cycles() {
        let mesh = MeshTopology::new(2, 1);
        let mut grid = LinkGrid::new(mesh);
        let east = grid.index_between(mesh.node_at(0, 0), mesh.node_at(1, 0));
        grid.state_mut(east).busy_cycles = 50;
        grid.state_mut(east).packets = 10;
        let utils: Vec<f64> = grid.utilizations(Cycle::new(100)).collect();
        assert_eq!(utils[east], 0.5);
        assert_eq!(grid.total_busy_cycles(), 50);
        assert_eq!(grid.total_link_traversals(), 10);
    }
}
