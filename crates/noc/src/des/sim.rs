//! Synthetic traffic generation for contention studies.
//!
//! [`run_synthetic`] drives either NoC backend with the same seeded,
//! deterministic packet stream — geometric inter-arrival gaps per node, a
//! fixed request/response/writeback mix, uniform or hotspot destinations —
//! and reports the latency and congestion figures.  Under the analytic
//! model the offered load is first converted into the single ρ estimate
//! that model needs (`Σ flit·hops / (duration · links)`), so the report
//! directly quantifies where the closed-form contention term diverges from
//! the measured discrete-event behaviour.

use simkernel::{Cycle, NodeId, RunningStat, SimRng};

use crate::network::{Noc, NocModel};
use crate::packet::{MessageClass, PacketKind};

/// The packet mix of the synthetic stream, mirroring a directory protocol's
/// request / data-response / writeback split.
const MIX: [(f64, MessageClass, u64); 3] = [
    (0.45, MessageClass::Read, 8),    // control requests
    (0.40, MessageClass::Read, 64),   // data responses
    (0.15, MessageClass::WbRepl, 64), // write-backs
];

/// A seeded synthetic traffic pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraffic {
    /// Packets injected per node per cycle (each node's Bernoulli rate).
    pub injection_rate: f64,
    /// Length of the injection window in cycles.
    pub duration: u64,
    /// Seed of the per-node address streams.
    pub seed: u64,
    /// Fraction of packets aimed at [`SyntheticTraffic::hotspot_nodes`]
    /// instead of a uniformly random destination.
    pub hotspot_fraction: f64,
    /// The hotspot destinations (e.g. filterDir home tiles); unused when
    /// empty or when `hotspot_fraction` is zero.
    pub hotspot_nodes: Vec<NodeId>,
}

impl SyntheticTraffic {
    /// Uniform-random traffic at `injection_rate` packets/node/cycle.
    pub fn uniform(injection_rate: f64, duration: u64, seed: u64) -> Self {
        SyntheticTraffic {
            injection_rate,
            duration,
            seed,
            hotspot_fraction: 0.0,
            hotspot_nodes: Vec::new(),
        }
    }

    /// Uniform traffic with a fraction redirected at hotspot tiles.
    pub fn hotspot(
        injection_rate: f64,
        duration: u64,
        seed: u64,
        hotspot_nodes: Vec<NodeId>,
        hotspot_fraction: f64,
    ) -> Self {
        SyntheticTraffic {
            injection_rate,
            duration,
            seed,
            hotspot_fraction: hotspot_fraction.clamp(0.0, 1.0),
            hotspot_nodes,
        }
    }
}

/// One generated packet of the stream.
struct GeneratedPacket {
    at: Cycle,
    from: NodeId,
    to: NodeId,
    class: MessageClass,
    bytes: u64,
}

/// What a synthetic run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticReport {
    /// The model that ran.
    pub model: NocModel,
    /// Packets injected (= delivered; the run drains completely).
    pub delivered: u64,
    /// Mean packet latency in cycles.
    pub mean_latency: f64,
    /// Worst packet latency in cycles.
    pub max_latency: f64,
    /// Mean zero-load latency of the same stream (the congestion-free
    /// floor both models share).
    pub mean_zero_load_latency: f64,
    /// Largest per-link utilisation: measured under the discrete-event
    /// model, the single ρ estimate under the analytic model.
    pub max_link_utilization: f64,
    /// Mean utilisation over the physical links (discrete-event only).
    pub mean_link_utilization: f64,
    /// Total cycles packets queued at ejection ports (discrete-event only)
    /// — the aggregate home-node pressure.
    pub total_eject_wait_cycles: u64,
    /// Worst single node's ejection-queue cycles (discrete-event only).
    pub max_node_eject_wait_cycles: u64,
    /// The node with that worst ejection queue.
    pub hottest_node: usize,
}

/// Generates the deterministic packet stream for `noc`'s topology.
fn generate(noc: &Noc, traffic: &SyntheticTraffic) -> Vec<GeneratedPacket> {
    let nodes = noc.topology().nodes();
    let rate = traffic.injection_rate.clamp(0.0, 1.0);
    let mut packets = Vec::new();
    if rate <= 0.0 || traffic.duration == 0 {
        return packets;
    }
    let mut base = SimRng::seed_from_u64(traffic.seed);
    for node in 0..nodes {
        let mut rng = base.fork(node as u64);
        // Geometric inter-arrival gaps realise the per-cycle Bernoulli rate
        // without walking every cycle.
        let mut t = 0u64;
        loop {
            let gap = if rate >= 1.0 {
                1
            } else {
                1 + (rng.next_f64().ln() / (1.0 - rate).ln()).floor() as u64
            };
            t = t.saturating_add(gap);
            if t >= traffic.duration {
                break;
            }
            let to = pick_destination(&mut rng, node, nodes, traffic);
            let (class, bytes) = pick_kind(&mut rng);
            packets.push(GeneratedPacket {
                at: Cycle::new(t),
                from: NodeId::new(node),
                to,
                class,
                bytes,
            });
        }
    }
    // Deliver in timestamp order; the per-node generation order breaks ties
    // deterministically.
    packets.sort_by_key(|p| p.at);
    packets
}

fn pick_destination(
    rng: &mut SimRng,
    from: usize,
    nodes: usize,
    traffic: &SyntheticTraffic,
) -> NodeId {
    if !traffic.hotspot_nodes.is_empty() && rng.gen_bool(traffic.hotspot_fraction) {
        return *rng
            .choose(&traffic.hotspot_nodes)
            .expect("non-empty hotspot set");
    }
    if nodes == 1 {
        return NodeId::new(0);
    }
    // Uniform over every node except the source.
    let pick = rng.next_below(nodes as u64 - 1) as usize;
    NodeId::new(if pick >= from { pick + 1 } else { pick })
}

fn pick_kind(rng: &mut SimRng) -> (MessageClass, u64) {
    let u = rng.next_f64();
    let mut acc = 0.0;
    for &(share, class, bytes) in &MIX {
        acc += share;
        if u < acc {
            return (class, bytes);
        }
    }
    let (_, class, bytes) = MIX[MIX.len() - 1];
    (class, bytes)
}

/// The single-ρ estimate the analytic model needs for an offered load:
/// total flit·hops divided by the link-cycles available in the window.
fn estimated_utilization(noc: &Noc, packets: &[GeneratedPacket], duration: u64) -> f64 {
    let topology = noc.topology();
    let links = topology.directed_links();
    if links == 0 || duration == 0 {
        return 0.0;
    }
    let flit_hops: u64 = packets
        .iter()
        .map(|p| PacketKind::for_payload(p.bytes).flits() * topology.hops(p.from, p.to).max(1))
        .sum();
    flit_hops as f64 / (duration as f64 * links as f64)
}

/// Drives `noc` with the synthetic stream and reports what it measured.
///
/// Pass a freshly constructed [`Noc`]: the report reads the backend's
/// cumulative statistics.  The same `traffic` value produces the same
/// packet stream under both models, so their reports are comparable
/// point by point.
pub fn run_synthetic(noc: &mut Noc, traffic: &SyntheticTraffic) -> SyntheticReport {
    let packets = generate(noc, traffic);
    let mut zero_load = RunningStat::new();
    for p in &packets {
        zero_load.record(
            noc.config()
                .zero_load_latency(p.from, p.to, p.bytes)
                .as_f64(),
        );
    }

    match noc.model() {
        NocModel::DiscreteEvent => {
            let engine = noc.des_mut().expect("discrete-event model selected");
            for p in &packets {
                engine.inject_at(p.at, p.from, p.to, p.class, p.bytes);
            }
            engine.drain();
            let engine = noc.des().expect("discrete-event model selected");
            let (hottest, max_wait) = engine.hottest_node();
            SyntheticReport {
                model: NocModel::DiscreteEvent,
                delivered: engine.delivered(),
                mean_latency: engine.latency_stat().mean(),
                max_latency: engine.latency_stat().max().unwrap_or(0.0),
                mean_zero_load_latency: zero_load.mean(),
                max_link_utilization: engine.max_link_utilization(),
                mean_link_utilization: engine.mean_link_utilization(),
                total_eject_wait_cycles: engine.eject_wait_cycles().iter().sum(),
                max_node_eject_wait_cycles: max_wait,
                hottest_node: hottest.index(),
            }
        }
        NocModel::Analytic => {
            let rho = estimated_utilization(noc, &packets, traffic.duration);
            noc.set_utilization(rho);
            let mut latency = RunningStat::new();
            for p in &packets {
                latency.record(noc.send(p.from, p.to, p.class, p.bytes).as_f64());
            }
            SyntheticReport {
                model: NocModel::Analytic,
                delivered: packets.len() as u64,
                mean_latency: latency.mean(),
                max_latency: latency.max().unwrap_or(0.0),
                mean_zero_load_latency: zero_load.mean(),
                max_link_utilization: noc.utilization(),
                mean_link_utilization: noc.utilization(),
                total_eject_wait_cycles: 0,
                max_node_eject_wait_cycles: 0,
                hottest_node: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NocConfig;

    fn noc(cores: usize, model: NocModel) -> Noc {
        Noc::new(NocConfig::isca2015(cores).with_model(model))
    }

    #[test]
    fn same_seed_same_report_on_both_models() {
        for model in NocModel::ALL {
            let traffic = SyntheticTraffic::uniform(0.05, 500, 42);
            let a = run_synthetic(&mut noc(16, model), &traffic);
            let b = run_synthetic(&mut noc(16, model), &traffic);
            assert_eq!(a, b, "{model}");
            assert!(a.delivered > 0, "{model}");
            assert!(a.mean_latency >= a.mean_zero_load_latency, "{model}");
        }
    }

    #[test]
    fn both_models_see_the_same_stream() {
        let traffic = SyntheticTraffic::uniform(0.05, 500, 7);
        let analytic = run_synthetic(&mut noc(16, NocModel::Analytic), &traffic);
        let des = run_synthetic(&mut noc(16, NocModel::DiscreteEvent), &traffic);
        assert_eq!(analytic.delivered, des.delivered);
        assert_eq!(analytic.mean_zero_load_latency, des.mean_zero_load_latency);
    }

    #[test]
    fn des_contention_grows_with_injection_rate() {
        let low = run_synthetic(
            &mut noc(16, NocModel::DiscreteEvent),
            &SyntheticTraffic::uniform(0.01, 2_000, 1),
        );
        let high = run_synthetic(
            &mut noc(16, NocModel::DiscreteEvent),
            &SyntheticTraffic::uniform(0.30, 2_000, 1),
        );
        assert!(high.max_link_utilization > low.max_link_utilization);
        assert!(high.mean_latency > low.mean_latency);
        assert!(high.total_eject_wait_cycles > low.total_eject_wait_cycles);
    }

    #[test]
    fn near_zero_rate_rides_the_zero_load_floor() {
        let report = run_synthetic(
            &mut noc(16, NocModel::DiscreteEvent),
            &SyntheticTraffic::uniform(0.001, 50_000, 3),
        );
        assert!(report.delivered > 0);
        // A handful of collisions are possible, but the mean must sit
        // essentially on the zero-load floor.
        assert!(
            report.mean_latency < report.mean_zero_load_latency * 1.05,
            "{} vs {}",
            report.mean_latency,
            report.mean_zero_load_latency
        );
    }

    #[test]
    fn hotspot_traffic_heats_the_target_node() {
        let target = NodeId::new(5);
        let traffic = SyntheticTraffic::hotspot(0.10, 2_000, 9, vec![target], 0.8);
        let report = run_synthetic(&mut noc(16, NocModel::DiscreteEvent), &traffic);
        assert_eq!(report.hottest_node, target.index());
        assert!(report.max_node_eject_wait_cycles > 0);
    }

    #[test]
    fn zero_rate_or_window_injects_nothing() {
        for traffic in [
            SyntheticTraffic::uniform(0.0, 1_000, 1),
            SyntheticTraffic::uniform(0.5, 0, 1),
        ] {
            let report = run_synthetic(&mut noc(16, NocModel::DiscreteEvent), &traffic);
            assert_eq!(report.delivered, 0);
            assert_eq!(report.mean_latency, 0.0);
        }
    }
}
