//! Message-level discrete-event NoC backend.
//!
//! The analytic model folds all congestion into one global ρ, which makes
//! hotspots — the filterDir home tiles the paper claims see "very low"
//! contention — invisible by construction.  This backend *measures* them:
//! every packet is XY-routed hop by hop over the mesh, claiming each
//! directed link's per-virtual-channel FIFO slot in timestamp order through
//! a [`simkernel::EventQueue`], with injection and ejection queues at every
//! node.  Per-link utilisation and per-node queueing come out as
//! first-class statistics instead of assumptions.
//!
//! The clock model: packets are injected at the engine's current cycle
//! (advanced by [`DesNoc::advance_to`] from the machine driver, or set per
//! packet by [`DesNoc::inject_at`] for synthetic traffic), and every
//! [`DesNoc::send`] drains the event queue so the caller gets the packet's
//! latency synchronously — the same `send(...) → latency` contract the
//! analytic model has.  On an idle network the latency is exactly the
//! analytic zero-load latency, `hops·(link+router) + flits−1`, which the
//! model-equivalence tests pin.

mod link;
mod sim;

pub use sim::{run_synthetic, SyntheticReport, SyntheticTraffic};

use simkernel::{Cycle, EventQueue, NodeId, RunningStat, StatRegistry};

use crate::backend::NocBackend;
use crate::network::NocConfig;
use crate::packet::{MessageClass, PacketKind, VirtualChannel, NUM_VIRTUAL_CHANNELS};
use crate::traffic::TrafficAccountant;

use link::LinkGrid;

/// One packet in flight (or delivered) within the current batch.
///
/// No route is stored: XY routing is deterministic, so each event computes
/// the next hop from the packet's current node and `dst`
/// ([`LinkGrid::next_toward`]) instead of walking a materialised `Vec`.
#[derive(Debug, Clone, Copy)]
struct PacketState {
    src: NodeId,
    dst: NodeId,
    vc: usize,
    flits: u64,
    injected_at: Cycle,
    delivered_at: Option<Cycle>,
}

/// A hop-level event of the mesh: a packet's head flit reaches the router at
/// `node` on its XY route.
///
/// Injections are *not* events: pending packets wait in a time-sorted flat
/// list and are merged into the event order by [`DesNoc::run_events`].  That
/// keeps the event heap at the size of the in-flight population (tens of
/// packets) instead of the whole batch (thousands), which is where a
/// binary-heap DES spends its time.
#[derive(Debug, Clone, Copy)]
struct Arrive {
    packet: usize,
    node: NodeId,
}

/// The discrete-event network backend.
///
/// # Example
///
/// ```
/// use noc::des::DesNoc;
/// use noc::{MessageClass, NocConfig, NocModel};
/// use simkernel::NodeId;
///
/// let config = NocConfig::isca2015(16).with_model(NocModel::DiscreteEvent);
/// let mut noc = DesNoc::new(config);
/// use noc::NocBackend;
/// let idle = noc.send(NodeId::new(0), NodeId::new(15), MessageClass::Read, 8);
/// assert_eq!(idle, config.zero_load_latency(NodeId::new(0), NodeId::new(15), 8));
/// // A burst to one node queues at its ejection port:
/// let busy = noc.send(NodeId::new(3), NodeId::new(15), MessageClass::Read, 8);
/// assert!(busy >= config.zero_load_latency(NodeId::new(3), NodeId::new(15), 8));
/// ```
#[derive(Debug)]
pub struct DesNoc {
    config: NocConfig,
    now: Cycle,
    /// Latest delivery seen — the denominator of the utilisation figures.
    horizon: Cycle,
    queue: EventQueue<Arrive>,
    packets: Vec<PacketState>,
    /// Packets injected but not yet granted their source's injection port:
    /// `(injection cycle, packet index)`, in call order.  Sorted stably by
    /// cycle at drain time, which reproduces the exact `(time, seq)` order a
    /// per-packet heap event would give — injections are always scheduled
    /// before the drain starts, so at equal cycles they process ahead of
    /// every arrival, and among themselves in call order.
    pending: Vec<(Cycle, usize)>,
    links: LinkGrid,
    inject_free: Vec<[Cycle; NUM_VIRTUAL_CHANNELS]>,
    eject_free: Vec<[Cycle; NUM_VIRTUAL_CHANNELS]>,
    inject_wait: Vec<u64>,
    eject_wait: Vec<u64>,
    delivered: u64,
    /// `advance_to` calls that tried to move the clock backwards.
    clock_regressions: u64,
    latency: RunningStat,
    traffic: TrafficAccountant,
}

impl DesNoc {
    /// Creates an idle discrete-event network.
    pub fn new(config: NocConfig) -> Self {
        let nodes = config.topology.nodes();
        DesNoc {
            config,
            now: Cycle::ZERO,
            horizon: Cycle::ZERO,
            queue: EventQueue::new(),
            packets: Vec::new(),
            pending: Vec::new(),
            links: LinkGrid::new(config.topology),
            inject_free: vec![[Cycle::ZERO; NUM_VIRTUAL_CHANNELS]; nodes],
            eject_free: vec![[Cycle::ZERO; NUM_VIRTUAL_CHANNELS]; nodes],
            inject_wait: vec![0; nodes],
            eject_wait: vec![0; nodes],
            delivered: 0,
            clock_regressions: 0,
            latency: RunningStat::new(),
            traffic: TrafficAccountant::new(),
        }
    }

    /// The engine's current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules one packet for injection at cycle `at`, recording its
    /// traffic, and returns its index within the current batch.
    ///
    /// Nothing moves until [`DesNoc::drain`] (or [`DesNoc::send`], which
    /// drains internally) runs the event queue.
    pub fn inject_at(
        &mut self,
        at: Cycle,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> usize {
        let kind = PacketKind::for_payload(payload_bytes);
        let hops = self.config.topology.hops(from, to);
        self.traffic.record(class, kind, hops.max(1));
        let id = self.packets.len();
        self.packets.push(PacketState {
            src: from,
            dst: to,
            vc: VirtualChannel::for_packet(class, kind).index(),
            flits: kind.flits(),
            injected_at: at,
            delivered_at: None,
        });
        self.pending.push((at, id));
        id
    }

    /// Processes every pending injection and in-flight arrival in global
    /// `(cycle, schedule order)` order until the network is empty.
    fn run_events(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        // A stable sort keeps call order among same-cycle injections — the
        // FIFO tie-break the event queue would apply.
        pending.sort_by_key(|&(at, _)| at);
        let mut next = 0;
        loop {
            // Injections were scheduled before any arrival of this drain,
            // so at equal cycles the injection goes first.
            let take_inject = match (pending.get(next), self.queue.peek_time()) {
                (Some(&(at, _)), Some(arrive)) => at <= arrive,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_inject {
                let (at, packet) = pending[next];
                next += 1;
                self.inject(at, packet);
            } else {
                let (when, event) = self.queue.pop().expect("peeked");
                self.step(when, event);
            }
        }
        pending.clear();
        self.pending = pending;
    }

    /// Runs the event queue until every in-flight packet is delivered,
    /// folds the batch into the cumulative statistics, and returns how many
    /// packets were delivered.
    pub fn drain(&mut self) -> u64 {
        self.run_events();
        let batch = self.packets.len() as u64;
        for p in self.packets.drain(..) {
            let delivered = p
                .delivered_at
                .expect("drained queue leaves no packet in flight");
            self.latency.record((delivered - p.injected_at).as_f64());
        }
        self.delivered += batch;
        batch
    }

    /// A packet asks its source node's injection port for a slot.
    fn inject(&mut self, when: Cycle, packet: usize) {
        let (src, vc, flits) = {
            let p = &self.packets[packet];
            (p.src, p.vc, p.flits)
        };
        let port = &mut self.inject_free[src.index()][vc];
        let start = when.max(*port);
        *port = start + Cycle::new(flits);
        self.inject_wait[src.index()] += (start - when).as_u64();
        self.queue.schedule(start, Arrive { packet, node: src });
    }

    fn step(&mut self, when: Cycle, Arrive { packet, node }: Arrive) {
        let p = self.packets[packet];
        match self.links.next_toward(node, p.dst) {
            None => {
                // Local (same-tile) packets still loop through their
                // router once, matching the analytic `hops.max(1)`.
                let ready = if node == p.src {
                    when + Cycle::new(self.config.hop_latency())
                } else {
                    when
                };
                let port = &mut self.eject_free[node.index()][p.vc];
                let granted = ready.max(*port);
                *port = granted + Cycle::new(p.flits);
                self.eject_wait[node.index()] += (granted - ready).as_u64();
                let delivered = granted + Cycle::new(p.flits - 1);
                self.packets[packet].delivered_at = Some(delivered);
                self.horizon = self.horizon.max(delivered);
            }
            Some((next, link)) => {
                let ready = when + self.config.router_latency;
                let state = self.links.state_mut(link);
                let depart = ready.max(state.free_at[p.vc]);
                state.free_at[p.vc] = depart + Cycle::new(p.flits);
                state.busy_cycles += p.flits;
                state.packets += 1;
                self.queue.schedule(
                    depart + self.config.link_latency,
                    Arrive { packet, node: next },
                );
            }
        }
    }

    // ------------------------------------------------------------- measured

    /// Largest measured utilisation over all directed links.
    pub fn max_link_utilization(&self) -> f64 {
        self.links.utilizations(self.horizon).fold(0.0f64, f64::max)
    }

    /// Mean measured utilisation over the links that physically exist.
    pub fn mean_link_utilization(&self) -> f64 {
        let physical = self.links.physical_links();
        if physical == 0 {
            return 0.0;
        }
        let denom = self.horizon.as_u64().max(1) as f64;
        self.links.total_busy_cycles() as f64 / denom / physical as f64
    }

    /// Measured utilisation of every directed link (index `node × 4 +
    /// direction`; links outside the mesh stay at zero).
    pub fn link_utilizations(&self) -> Vec<f64> {
        self.links.utilizations(self.horizon).collect()
    }

    /// Cumulative busy cycles of every directed link (same indexing as
    /// [`DesNoc::link_utilizations`]) — the counter the trace sampler
    /// differentiates into per-link utilisation over time windows.
    pub fn link_busy_cycles(&self) -> Vec<u64> {
        self.links.busy_cycles_per_link().collect()
    }

    /// Cycles packets spent queued at each node's ejection port — the
    /// per-home-node pressure figure for filterDir hotspot analysis.
    pub fn eject_wait_cycles(&self) -> &[u64] {
        &self.eject_wait
    }

    /// Cycles packets spent queued at each node's injection port.
    pub fn inject_wait_cycles(&self) -> &[u64] {
        &self.inject_wait
    }

    /// Instantaneous home-node queue depth: for each node, how many cycles
    /// past `at` its ejection port is already committed, summed over virtual
    /// channels.  Zero means the port is free — packets arriving at `at`
    /// eject immediately.
    ///
    /// This is the mid-run counterpart of [`DesNoc::eject_wait_cycles`]
    /// (which accumulates to end of run): the stat sampler and the
    /// contention ablation read it while the simulation is still moving to
    /// see *when* a filterDir home tile backs up, not just that it did.
    /// Allocation-free: fills the caller's `depths` scratch buffer (cleared
    /// and resized to the node count) so the per-sample hot path of the
    /// stat time-series reuses one buffer for the whole run.
    pub fn home_queue_depths(&self, at: Cycle, depths: &mut Vec<u64>) {
        depths.clear();
        depths.extend(self.eject_free.iter().map(|ports| {
            ports
                .iter()
                .map(|&free| free.as_u64().saturating_sub(at.as_u64()))
                .sum::<u64>()
        }));
    }

    /// [`DesNoc::home_queue_depths`] at the engine's current cycle, as a
    /// fresh vector (the cold-path convenience form).
    pub fn home_queue_depths_now(&self) -> Vec<u64> {
        let mut depths = Vec::new();
        self.home_queue_depths(self.now, &mut depths);
        depths
    }

    /// The node with the largest ejection-queue wait, with that wait.
    pub fn hottest_node(&self) -> (NodeId, u64) {
        let (node, wait) = self
            .eject_wait
            .iter()
            .enumerate()
            .max_by_key(|&(i, &w)| (w, std::cmp::Reverse(i)))
            .unwrap_or((0, &0));
        (NodeId::new(node), *wait)
    }

    /// Packets delivered since construction.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of [`NocBackend::advance_to`] calls that ran backwards.
    ///
    /// Each regression is a driver hand-off from a core that is ahead in
    /// simulated time to one that is behind — traffic the network observed
    /// in an order no real machine would produce.  A globally-clocked
    /// scheduler (the `interleaved` execution engine) keeps this near zero;
    /// tile-serialized replay racks up one regression per core switch, which
    /// makes the ordering artifact directly measurable.
    pub fn clock_regressions(&self) -> u64 {
        self.clock_regressions
    }

    /// Running min/mean/max of the delivered packets' latencies.
    pub fn latency_stat(&self) -> RunningStat {
        self.latency
    }

    /// The latest delivery cycle observed (the utilisation denominator).
    pub fn horizon(&self) -> Cycle {
        self.horizon
    }
}

impl Clone for DesNoc {
    /// Clones the network state between batches.
    ///
    /// The event queue is always empty then (every public entry point drains
    /// it before returning), so the clone starts from a fresh queue.
    fn clone(&self) -> Self {
        debug_assert!(
            self.queue.is_empty() && self.pending.is_empty(),
            "clone with packets in flight"
        );
        DesNoc {
            config: self.config,
            now: self.now,
            horizon: self.horizon,
            queue: EventQueue::new(),
            packets: self.packets.clone(),
            pending: Vec::new(),
            links: self.links.clone(),
            inject_free: self.inject_free.clone(),
            eject_free: self.eject_free.clone(),
            inject_wait: self.inject_wait.clone(),
            eject_wait: self.eject_wait.clone(),
            delivered: self.delivered,
            clock_regressions: self.clock_regressions,
            latency: self.latency,
            traffic: self.traffic.clone(),
        }
    }
}

impl NocBackend for DesNoc {
    fn config(&self) -> &NocConfig {
        &self.config
    }

    fn advance_to(&mut self, now: Cycle) {
        if now < self.now {
            // Time never runs backwards; count the attempt so drivers can
            // quantify how far their clock discipline is from global time.
            self.clock_regressions += 1;
        }
        self.now = self.now.max(now);
    }

    fn send(&mut self, from: NodeId, to: NodeId, class: MessageClass, payload_bytes: u64) -> Cycle {
        let id = self.inject_at(self.now, from, to, class, payload_bytes);
        self.run_events();
        let p = &self.packets[id];
        let latency = p.delivered_at.expect("drained") - p.injected_at;
        self.drain();
        latency
    }

    fn latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle {
        // An unsent packet occupies no links: the oracle probe sees the
        // zero-load latency.
        self.config.zero_load_latency(from, to, payload_bytes)
    }

    fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    fn take_traffic(&mut self) -> TrafficAccountant {
        std::mem::take(&mut self.traffic)
    }

    fn export_stats(&self, stats: &mut StatRegistry) {
        self.traffic.export(stats);
        stats.set_value("noc.utilization", self.max_link_utilization());
        stats.set_value("noc.des.links.max_utilization", self.max_link_utilization());
        stats.set_value(
            "noc.des.links.mean_utilization",
            self.mean_link_utilization(),
        );
        stats.add_count("noc.des.links.busy_cycles", self.links.total_busy_cycles());
        stats.add_count(
            "noc.des.links.traversals",
            self.links.total_link_traversals(),
        );
        stats.add_count("noc.des.inject.wait_cycles", self.inject_wait.iter().sum());
        stats.add_count("noc.des.eject.wait_cycles", self.eject_wait.iter().sum());
        let (hottest, wait) = self.hottest_node();
        stats.add_count("noc.des.eject.max_node_wait_cycles", wait);
        stats.set_value("noc.des.eject.hottest_node", hottest.index() as f64);
        stats.add_count("noc.des.packets.delivered", self.delivered);
        stats.add_count("noc.des.clock.regressions", self.clock_regressions);
        stats.set_value("noc.des.latency.mean", self.latency.mean());
        stats.set_value("noc.des.latency.max", self.latency.max().unwrap_or(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Noc, NocModel};

    fn des(cores: usize) -> DesNoc {
        DesNoc::new(NocConfig::isca2015(cores).with_model(NocModel::DiscreteEvent))
    }

    #[test]
    fn idle_latency_equals_analytic_zero_load_for_every_pair() {
        for cores in [4, 6, 9, 16, 64] {
            let config = NocConfig::isca2015(cores).with_model(NocModel::DiscreteEvent);
            let mut noc = DesNoc::new(config);
            let mut epoch = Cycle::ZERO;
            for from in 0..cores {
                for to in 0..cores {
                    for bytes in [8, 64] {
                        // Move far past every queue so each probe sees an
                        // idle network.
                        epoch += Cycle::new(10_000);
                        noc.advance_to(epoch);
                        let got = noc.send(
                            NodeId::new(from),
                            NodeId::new(to),
                            MessageClass::Read,
                            bytes,
                        );
                        let want =
                            config.zero_load_latency(NodeId::new(from), NodeId::new(to), bytes);
                        assert_eq!(got, want, "{cores} cores, {from}->{to}, {bytes}B");
                    }
                }
            }
        }
    }

    #[test]
    fn back_to_back_packets_queue_on_the_shared_link() {
        let mut noc = des(16);
        let first = noc.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 64);
        // Same instant, same path, same virtual channel: must wait.
        let second = noc.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 64);
        assert!(second > first, "{second} vs {first}");
    }

    #[test]
    fn virtual_channels_decouple_message_classes() {
        // Saturate the writeback channel on the 0→1 link, then check a
        // request on the same link is unaffected.
        let mut congested = des(16);
        let mut idle = des(16);
        for _ in 0..8 {
            let _ = congested.send(NodeId::new(0), NodeId::new(3), MessageClass::WbRepl, 64);
        }
        let through_congested =
            congested.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 8);
        let through_idle = idle.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 8);
        assert_eq!(
            through_congested, through_idle,
            "request channel must not see writeback backlog"
        );
    }

    #[test]
    fn hotspot_destination_accumulates_ejection_wait() {
        let mut noc = des(16);
        let target = NodeId::new(5);
        for src in [0usize, 1, 2, 4, 8, 12] {
            let _ = noc.send(NodeId::new(src), target, MessageClass::Read, 64);
        }
        let waits = noc.eject_wait_cycles();
        assert!(
            waits[target.index()] > 0,
            "converging traffic must queue at the hot ejection port"
        );
        assert_eq!(noc.hottest_node().0, target);
    }

    #[test]
    fn home_queue_snapshot_tracks_instantaneous_backlog() {
        let mut noc = des(16);
        let target = NodeId::new(5);
        for src in [0usize, 1, 2, 4, 8, 12] {
            let _ = noc.send(NodeId::new(src), target, MessageClass::Read, 64);
        }
        // Just after the burst the hot ejection port is still committed into
        // the future; every other node is idle.
        let depths = noc.home_queue_depths_now();
        assert!(depths[target.index()] > 0, "hot home must show backlog");
        for (node, &depth) in depths.iter().enumerate() {
            if node != target.index() {
                assert_eq!(depth, 0, "node {node} saw no converging traffic");
            }
        }
        // Far enough in the future the backlog has fully drained.  The
        // scratch form reuses (and clears) the caller's buffer.
        let later = noc.horizon() + Cycle::new(1);
        let mut drained = depths;
        noc.home_queue_depths(later, &mut drained);
        assert!(drained.iter().all(|&d| d == 0));
    }

    #[test]
    fn convenience_snapshot_is_a_thin_wrapper_over_the_scratch_form() {
        // `home_queue_depths_now` must never drift from the scratch-buffer
        // path it wraps: both forms read the same `eject_free` books at the
        // same cycle, so the depths are pinned identical — mid-burst (with
        // real backlog) and after advancing the engine's clock.
        let mut noc = des(16);
        for src in [0usize, 1, 2, 3, 6, 9, 12, 15] {
            let _ = noc.send(NodeId::new(src), NodeId::new(5), MessageClass::Read, 64);
            let _ = noc.send(NodeId::new(src), NodeId::new(10), MessageClass::Write, 8);
        }
        let mut scratch = vec![0xdead_beef; 3];
        noc.home_queue_depths(noc.now(), &mut scratch);
        assert_eq!(noc.home_queue_depths_now(), scratch);
        assert!(scratch.iter().any(|&d| d > 0), "the burst left a backlog");

        noc.advance_to(noc.now() + Cycle::new(7));
        noc.home_queue_depths(noc.now(), &mut scratch);
        assert_eq!(noc.home_queue_depths_now(), scratch, "after advancing");
    }

    #[test]
    fn utilization_is_measured_not_assumed() {
        let mut noc = des(16);
        assert_eq!(noc.max_link_utilization(), 0.0);
        for _ in 0..4 {
            let _ = noc.send(NodeId::new(0), NodeId::new(15), MessageClass::Read, 64);
        }
        assert!(noc.max_link_utilization() > 0.0);
        assert!(noc.mean_link_utilization() <= noc.max_link_utilization());
        assert_eq!(noc.delivered(), 4);
        assert!(noc.latency_stat().mean() > 0.0);
        assert!(noc.horizon() > Cycle::ZERO);
    }

    #[test]
    fn advance_to_is_monotonic_and_clears_backlog() {
        let mut noc = des(16);
        let _ = noc.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 64);
        assert_eq!(noc.clock_regressions(), 0);
        noc.advance_to(Cycle::new(1_000));
        noc.advance_to(Cycle::new(10)); // ignored: time never runs backwards
        assert_eq!(noc.now(), Cycle::new(1_000));
        // ...but the backwards hand-off is counted: it measures how far the
        // driver's clock discipline deviates from global time.
        assert_eq!(noc.clock_regressions(), 1);
        let mut stats = StatRegistry::new();
        noc.export_stats(&mut stats);
        assert_eq!(stats.count("noc.des.clock.regressions"), 1);
        let after = noc.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 64);
        assert_eq!(
            after,
            noc.config
                .zero_load_latency(NodeId::new(0), NodeId::new(3), 64),
            "queues drained long ago"
        );
    }

    #[test]
    fn batch_injection_interleaves_deterministically() {
        let run = || {
            let mut noc = des(16);
            for i in 0..40u64 {
                let from = NodeId::new((i % 16) as usize);
                let to = NodeId::new(((i * 7 + 3) % 16) as usize);
                noc.inject_at(
                    Cycle::new(i / 4),
                    from,
                    to,
                    MessageClass::Read,
                    8 + 56 * (i % 2),
                );
            }
            let delivered = noc.drain();
            (
                delivered,
                noc.latency_stat().sum(),
                noc.max_link_utilization(),
            )
        };
        assert_eq!(run(), run());
        assert_eq!(run().0, 40);
    }

    #[test]
    fn export_stats_carries_link_and_node_figures() {
        let mut noc = des(16);
        for src in 0..8usize {
            let _ = noc.send(NodeId::new(src), NodeId::new(15), MessageClass::Read, 64);
        }
        let mut stats = StatRegistry::new();
        noc.export_stats(&mut stats);
        assert!(stats.contains("noc.des.links.max_utilization"));
        assert!(stats.value("noc.des.links.max_utilization") > 0.0);
        assert!(stats.count("noc.des.packets.delivered") == 8);
        assert!(stats.contains("noc.des.eject.wait_cycles"));
        assert!(stats.contains("noc.des.eject.hottest_node"));
        assert!(stats.count("noc.total.packets") == 8);
    }

    #[test]
    fn clone_preserves_state_with_a_fresh_queue() {
        let mut noc = des(16);
        let _ = noc.send(NodeId::new(0), NodeId::new(15), MessageClass::Read, 64);
        let copy = noc.clone();
        assert_eq!(copy.delivered(), noc.delivered());
        assert_eq!(copy.max_link_utilization(), noc.max_link_utilization());
    }

    #[test]
    fn facade_runs_the_des_backend() {
        let mut noc = Noc::new(NocConfig::isca2015(16).with_model(NocModel::DiscreteEvent));
        let lat = noc.send(NodeId::new(0), NodeId::new(15), MessageClass::Read, 8);
        assert_eq!(lat, Cycle::new(12));
        assert!(noc.des().is_some());
        assert_eq!(noc.traffic().total_packets(), 1);
        // set_utilization is a no-op under DES; utilization() is measured.
        noc.set_utilization(0.9);
        assert!(noc.utilization() < 0.9);
    }
}
