//! The network model proper: latency computation and traffic recording.
//!
//! Two backends implement [`NocBackend`](crate::NocBackend):
//!
//! * [`AnalyticNoc`] — the closed-form model: XY hop count times per-hop
//!   latency plus a utilisation-driven M/M/1-style contention penalty fed by
//!   one hand-set utilisation scalar;
//! * [`DesNoc`](crate::des::DesNoc) — the discrete-event model: every packet
//!   is routed hop by hop over per-link, per-virtual-channel FIFOs, so
//!   contention is *measured* instead of assumed.
//!
//! [`Noc`] is the facade the memory hierarchy and the coherence protocol
//! talk to; [`NocConfig::model`] selects which backend it instantiates.

use serde::{Deserialize, Serialize};
use simkernel::{Cycle, NodeId, StatRegistry};

use crate::backend::NocBackend;
use crate::des::DesNoc;
use crate::packet::{MessageClass, PacketKind};
use crate::topology::MeshTopology;
use crate::traffic::TrafficAccountant;

/// Largest link utilisation the analytic contention formula accepts.
///
/// The M/M/1-style queueing term `contention_factor · ρ² / (1 − ρ)` diverges
/// as ρ → 1; clamping at this value bounds the per-hop penalty at
/// `contention_factor · 18.05` cycles, which is already far beyond the regime
/// where the closed-form model is trustworthy.  Callers that hit the clamp
/// are counted (see `noc.utilization.clamp_events` in the exported stats) so
/// a saturated analytic model is visible in every report instead of silently
/// under-predicting — the discrete-event backend is the right tool there.
pub const MAX_UTILIZATION: f64 = 0.95;

/// Which network model a [`Noc`] instantiates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NocModel {
    /// Closed-form latency: hops × per-hop latency + serialization + a
    /// global utilisation-driven contention term.  Fast, memoryless, and
    /// blind to hotspots by construction.
    #[default]
    Analytic,
    /// Message-level discrete-event simulation: XY routing over per-link,
    /// per-virtual-channel FIFOs with injection/ejection queues.  Measures
    /// per-link utilisation and per-node queueing instead of assuming them.
    DiscreteEvent,
}

impl NocModel {
    /// Both models, analytic first.
    pub const ALL: [NocModel; 2] = [NocModel::Analytic, NocModel::DiscreteEvent];

    /// Stable identifier used by campaign descriptors and CLI flags.
    pub fn id(self) -> &'static str {
        match self {
            NocModel::Analytic => "analytic",
            NocModel::DiscreteEvent => "discrete-event",
        }
    }

    /// Parses a model identifier (the inverse of [`NocModel::id`]; the
    /// shorthand `des` is accepted for the discrete-event model).
    pub fn from_id(id: &str) -> Option<NocModel> {
        match id {
            "analytic" => Some(NocModel::Analytic),
            "discrete-event" | "des" => Some(NocModel::DiscreteEvent),
            _ => None,
        }
    }
}

impl std::fmt::Display for NocModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Configuration of the on-chip network.
///
/// The defaults follow Table 1 of the paper: a mesh with 1-cycle links and
/// 1-cycle routers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh topology (8×8 for the 64-core configuration).
    pub topology: MeshTopology,
    /// Cycles to traverse one link.
    pub link_latency: Cycle,
    /// Cycles spent in each router.
    pub router_latency: Cycle,
    /// Strength of the utilisation-driven contention penalty.
    ///
    /// The added queueing delay per hop is
    /// `contention_factor · ρ² / (1 − ρ)` cycles, where ρ is the link
    /// utilisation estimate fed through [`Noc::set_utilization`].  With the
    /// paper's workloads ρ stays low, so the penalty is small — exactly the
    /// behaviour the paper reports ("contention in the filterDir is very
    /// low").  Only the analytic backend uses this knob.
    pub contention_factor: f64,
    /// Which backend a [`Noc`] built from this configuration uses.
    pub model: NocModel,
}

impl NocConfig {
    /// The paper's NoC configuration for a machine with `cores` tiles.
    pub fn isca2015(cores: usize) -> Self {
        NocConfig {
            topology: MeshTopology::square_for(cores),
            link_latency: Cycle::new(1),
            router_latency: Cycle::new(1),
            contention_factor: 4.0,
            model: NocModel::Analytic,
        }
    }

    /// The same configuration with the model replaced.
    pub fn with_model(mut self, model: NocModel) -> Self {
        self.model = model;
        self
    }

    /// Cycles for one hop: one link traversal plus one router traversal.
    pub fn hop_latency(&self) -> u64 {
        self.link_latency.as_u64() + self.router_latency.as_u64()
    }

    /// The latency of a packet on an otherwise idle network.
    ///
    /// `hops × (link + router)` for the head flit plus one cycle per
    /// additional flit of the packet.  Local (same-tile) messages still pay
    /// one hop for the router loopback.  Both backends agree on this value
    /// by construction, which is what the model-equivalence tests pin.
    pub fn zero_load_latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle {
        let hops = self.topology.hops(from, to).max(1);
        let serialization = PacketKind::for_payload(payload_bytes)
            .flits()
            .saturating_sub(1);
        Cycle::new(hops * self.hop_latency() + serialization)
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::isca2015(64)
    }
}

/// The closed-form network model: latency formula plus traffic accounting.
#[derive(Debug, Clone)]
pub struct AnalyticNoc {
    config: NocConfig,
    traffic: TrafficAccountant,
    utilization: f64,
    clamp_events: u64,
}

impl AnalyticNoc {
    /// Creates an analytic network with the given configuration.
    pub fn new(config: NocConfig) -> Self {
        AnalyticNoc {
            config,
            traffic: TrafficAccountant::new(),
            utilization: 0.0,
            clamp_events: 0,
        }
    }

    /// Updates the link-utilisation estimate ρ used by the contention model.
    ///
    /// The value is clamped to `[0, MAX_UTILIZATION]` so the queueing term
    /// stays finite; every call that actually hits the upper clamp is
    /// counted in the `noc.utilization.clamp_events` statistic.
    pub fn set_utilization(&mut self, rho: f64) {
        if rho > MAX_UTILIZATION {
            self.clamp_events += 1;
        }
        self.utilization = rho.clamp(0.0, MAX_UTILIZATION);
    }

    /// Current link-utilisation estimate.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// How many [`AnalyticNoc::set_utilization`] calls saturated the clamp.
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }

    fn contention_delay_per_hop(&self) -> f64 {
        let rho = self.utilization;
        if rho <= 0.0 {
            0.0
        } else {
            self.config.contention_factor * rho * rho / (1.0 - rho)
        }
    }
}

impl NocBackend for AnalyticNoc {
    fn config(&self) -> &NocConfig {
        &self.config
    }

    fn advance_to(&mut self, _now: Cycle) {
        // The analytic model is memoryless.
    }

    fn latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle {
        let hops = self.config.topology.hops(from, to).max(1);
        let contention = (self.contention_delay_per_hop() * hops as f64).round() as u64;
        self.config.zero_load_latency(from, to, payload_bytes) + Cycle::new(contention)
    }

    fn send(&mut self, from: NodeId, to: NodeId, class: MessageClass, payload_bytes: u64) -> Cycle {
        // Route and classify once; `latency()` would recompute both (and
        // `zero_load_latency` a third time), and the contention term is
        // exactly zero on an idle network, so the f64 path is skipped there.
        let hops = self.config.topology.hops(from, to).max(1);
        let kind = PacketKind::for_payload(payload_bytes);
        self.traffic.record(class, kind, hops);
        let serialization = kind.flits().saturating_sub(1);
        let contention = if self.utilization <= 0.0 {
            0
        } else {
            (self.contention_delay_per_hop() * hops as f64).round() as u64
        };
        Cycle::new(hops * self.config.hop_latency() + serialization + contention)
    }

    fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    fn take_traffic(&mut self) -> TrafficAccountant {
        std::mem::take(&mut self.traffic)
    }

    fn export_stats(&self, stats: &mut StatRegistry) {
        self.traffic.export(stats);
        stats.set_value("noc.utilization", self.utilization);
        stats.add_count("noc.utilization.clamp_events", self.clamp_events);
    }
}

/// The backend a [`Noc`] dispatches to.
// One `Noc` exists per `MemorySystem`, never in bulk collections, so the
// size asymmetry between the two backends is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum NocEngine {
    Analytic(AnalyticNoc),
    DiscreteEvent(DesNoc),
}

/// The on-chip network: computes message latencies and accounts traffic.
///
/// A facade over the backend selected by [`NocConfig::model`]; the memory
/// hierarchy and the coherence protocol are oblivious to which model runs
/// underneath.
///
/// # Example
///
/// ```
/// use noc::{MessageClass, Noc, NocConfig, NocModel};
/// use simkernel::NodeId;
///
/// let mut noc = Noc::new(NocConfig::isca2015(16));
/// let lat = noc.send(NodeId::new(0), NodeId::new(15), MessageClass::Write, 64);
/// assert!(lat.as_u64() > 0);
///
/// // The same experiment under the discrete-event backend:
/// let mut des = Noc::new(NocConfig::isca2015(16).with_model(NocModel::DiscreteEvent));
/// let idle = des.send(NodeId::new(0), NodeId::new(15), MessageClass::Write, 64);
/// assert_eq!(idle, lat, "idle DES latency equals the analytic zero-load latency");
/// ```
#[derive(Debug, Clone)]
pub struct Noc {
    engine: NocEngine,
}

impl Noc {
    /// Creates a network with the given configuration, instantiating the
    /// backend named by [`NocConfig::model`].
    pub fn new(config: NocConfig) -> Self {
        let engine = match config.model {
            NocModel::Analytic => NocEngine::Analytic(AnalyticNoc::new(config)),
            NocModel::DiscreteEvent => NocEngine::DiscreteEvent(DesNoc::new(config)),
        };
        Noc { engine }
    }

    fn backend(&self) -> &dyn NocBackend {
        match &self.engine {
            NocEngine::Analytic(a) => a,
            NocEngine::DiscreteEvent(d) => d,
        }
    }

    fn backend_mut(&mut self) -> &mut dyn NocBackend {
        match &mut self.engine {
            NocEngine::Analytic(a) => a,
            NocEngine::DiscreteEvent(d) => d,
        }
    }

    /// Returns the network configuration.
    pub fn config(&self) -> &NocConfig {
        self.backend().config()
    }

    /// The model this network runs.
    pub fn model(&self) -> NocModel {
        self.config().model
    }

    /// Returns the topology.
    pub fn topology(&self) -> &MeshTopology {
        &self.backend().config().topology
    }

    /// The discrete-event backend, when that is the active model.
    ///
    /// Grants access to the measured per-link utilisations and per-node
    /// queueing counters that have no analytic counterpart.
    pub fn des(&self) -> Option<&DesNoc> {
        match &self.engine {
            NocEngine::DiscreteEvent(d) => Some(d),
            NocEngine::Analytic(_) => None,
        }
    }

    /// Mutable access to the discrete-event backend, when that is the
    /// active model — the batch-injection entry point for synthetic
    /// traffic drivers.
    pub fn des_mut(&mut self) -> Option<&mut DesNoc> {
        match &mut self.engine {
            NocEngine::DiscreteEvent(d) => Some(d),
            NocEngine::Analytic(_) => None,
        }
    }

    /// Updates the link-utilisation estimate ρ used by the analytic
    /// contention model.
    ///
    /// The value is clamped to `[0, MAX_UTILIZATION]` so the queueing term
    /// stays finite (saturating calls are counted in the exported
    /// `noc.utilization.clamp_events` statistic).  The discrete-event
    /// backend measures utilisation instead of assuming it, so the call is
    /// a no-op there.
    pub fn set_utilization(&mut self, rho: f64) {
        if let NocEngine::Analytic(a) = &mut self.engine {
            a.set_utilization(rho);
        }
    }

    /// Current link-utilisation estimate: the hand-set ρ under the analytic
    /// model, the measured maximum per-link utilisation under the
    /// discrete-event model.
    pub fn utilization(&self) -> f64 {
        match &self.engine {
            NocEngine::Analytic(a) => a.utilization(),
            NocEngine::DiscreteEvent(d) => d.max_link_utilization(),
        }
    }

    /// Advances the network's notion of the current cycle (monotonic).
    ///
    /// The machine driver calls this with each core's clock before issuing
    /// that core's memory traffic, so discrete-event queueing happens in
    /// simulation time rather than piling every packet onto cycle zero.
    pub fn advance_to(&mut self, now: Cycle) {
        // Statically dispatched (as is `send`): both sit in the per-op hot
        // loop, where the virtual call through `backend_mut` is measurable.
        match &mut self.engine {
            NocEngine::Analytic(a) => NocBackend::advance_to(a, now),
            NocEngine::DiscreteEvent(d) => NocBackend::advance_to(d, now),
        }
    }

    /// Latency of a packet between two nodes *without* recording traffic.
    ///
    /// Useful for "ideal" oracle models that must not perturb the traffic
    /// statistics; under the discrete-event model this is the zero-load
    /// latency, since an unsent packet occupies no links.
    #[inline]
    pub fn latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle {
        match &self.engine {
            NocEngine::Analytic(a) => NocBackend::latency(a, from, to, payload_bytes),
            NocEngine::DiscreteEvent(d) => NocBackend::latency(d, from, to, payload_bytes),
        }
    }

    /// Sends one packet and returns its latency, recording the traffic.
    ///
    /// `payload_bytes` chooses between control packets (< 32 bytes: requests,
    /// acks, invalidations) and data packets (a cache line).
    #[inline]
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> Cycle {
        match &mut self.engine {
            NocEngine::Analytic(a) => NocBackend::send(a, from, to, class, payload_bytes),
            NocEngine::DiscreteEvent(d) => NocBackend::send(d, from, to, class, payload_bytes),
        }
    }

    /// Sends a request/response pair and returns the round-trip latency.
    pub fn round_trip(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Cycle {
        self.backend_mut()
            .round_trip(from, to, class, request_bytes, response_bytes)
    }

    /// Broadcasts a control packet from `from` to every other node and
    /// collects one control response from each.
    ///
    /// Returns the latency until the *last* response arrives (the critical
    /// path of a filterDir broadcast, Figure 6b of the paper).
    pub fn broadcast_collect(
        &mut self,
        from: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> Cycle {
        self.backend_mut()
            .broadcast_collect(from, class, payload_bytes)
    }

    /// Read access to the accumulated traffic.
    pub fn traffic(&self) -> &TrafficAccountant {
        self.backend().traffic()
    }

    /// Drains the accumulated traffic, leaving the accountant empty.
    pub fn take_traffic(&mut self) -> TrafficAccountant {
        self.backend_mut().take_traffic()
    }

    /// Exports the traffic counters into a [`StatRegistry`].
    pub fn export_stats(&self, stats: &mut StatRegistry) {
        self.backend().export_stats(stats);
    }
}

impl NocBackend for Noc {
    fn config(&self) -> &NocConfig {
        Noc::config(self)
    }

    fn advance_to(&mut self, now: Cycle) {
        Noc::advance_to(self, now);
    }

    fn send(&mut self, from: NodeId, to: NodeId, class: MessageClass, payload_bytes: u64) -> Cycle {
        Noc::send(self, from, to, class, payload_bytes)
    }

    fn latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle {
        Noc::latency(self, from, to, payload_bytes)
    }

    fn traffic(&self) -> &TrafficAccountant {
        Noc::traffic(self)
    }

    fn take_traffic(&mut self) -> TrafficAccountant {
        Noc::take_traffic(self)
    }

    fn export_stats(&self, stats: &mut StatRegistry) {
        Noc::export_stats(self, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_match_table1() {
        let c = NocConfig::default();
        assert_eq!(c.topology.nodes(), 64);
        assert_eq!(c.link_latency, Cycle::new(1));
        assert_eq!(c.router_latency, Cycle::new(1));
        assert_eq!(c.model, NocModel::Analytic);
    }

    #[test]
    fn model_ids_round_trip() {
        for model in NocModel::ALL {
            assert_eq!(NocModel::from_id(model.id()), Some(model));
        }
        assert_eq!(NocModel::from_id("des"), Some(NocModel::DiscreteEvent));
        assert_eq!(NocModel::from_id("quantum"), None);
        assert_eq!(NocModel::DiscreteEvent.to_string(), "discrete-event");
        assert_eq!(NocModel::default(), NocModel::Analytic);
    }

    #[test]
    fn with_model_selects_the_backend() {
        let analytic = Noc::new(NocConfig::isca2015(16));
        assert_eq!(analytic.model(), NocModel::Analytic);
        assert!(analytic.des().is_none());
        let des = Noc::new(NocConfig::isca2015(16).with_model(NocModel::DiscreteEvent));
        assert_eq!(des.model(), NocModel::DiscreteEvent);
        assert!(des.des().is_some());
    }

    #[test]
    fn latency_scales_with_distance() {
        let noc = Noc::new(NocConfig::isca2015(64));
        let near = noc.latency(NodeId::new(0), NodeId::new(1), 8);
        let far = noc.latency(NodeId::new(0), NodeId::new(63), 8);
        assert!(far > near);
        // 14 hops * (1+1) cycles for a single-flit control packet.
        assert_eq!(far, Cycle::new(28));
    }

    #[test]
    fn data_packets_add_serialization_latency() {
        let noc = Noc::new(NocConfig::isca2015(64));
        let control = noc.latency(NodeId::new(0), NodeId::new(2), 8);
        let data = noc.latency(NodeId::new(0), NodeId::new(2), 64);
        assert_eq!(
            data - control,
            Cycle::new(4),
            "5-flit data packet adds 4 serialization cycles"
        );
    }

    #[test]
    fn local_messages_still_cost_one_hop() {
        let noc = Noc::new(NocConfig::isca2015(64));
        let lat = noc.latency(NodeId::new(5), NodeId::new(5), 8);
        assert_eq!(lat, Cycle::new(2));
    }

    #[test]
    fn send_records_traffic_latency_does_not() {
        let mut noc = Noc::new(NocConfig::isca2015(16));
        let _ = noc.latency(NodeId::new(0), NodeId::new(3), 64);
        assert_eq!(noc.traffic().total_packets(), 0);
        let _ = noc.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 64);
        assert_eq!(noc.traffic().total_packets(), 1);
        assert_eq!(noc.traffic().packets(MessageClass::Read), 1);
    }

    #[test]
    fn round_trip_records_two_packets() {
        let mut noc = Noc::new(NocConfig::isca2015(16));
        let rt = noc.round_trip(NodeId::new(1), NodeId::new(2), MessageClass::Dma, 8, 64);
        assert_eq!(noc.traffic().packets(MessageClass::Dma), 2);
        assert!(rt > Cycle::ZERO);
    }

    #[test]
    fn broadcast_touches_every_other_node() {
        let mut noc = Noc::new(NocConfig::isca2015(16));
        let lat = noc.broadcast_collect(NodeId::new(0), MessageClass::CohProt, 8);
        // 15 requests + 15 responses.
        assert_eq!(noc.traffic().packets(MessageClass::CohProt), 30);
        assert!(lat >= noc.latency(NodeId::new(0), NodeId::new(15), 8) * 2);
    }

    #[test]
    fn contention_increases_latency() {
        let mut noc = Noc::new(NocConfig::isca2015(64));
        let idle = noc.latency(NodeId::new(0), NodeId::new(63), 8);
        noc.set_utilization(0.8);
        let busy = noc.latency(NodeId::new(0), NodeId::new(63), 8);
        assert!(busy > idle);
        noc.set_utilization(2.0);
        assert!(noc.utilization() <= MAX_UTILIZATION);
    }

    #[test]
    fn clamped_utilization_is_counted() {
        let mut noc = AnalyticNoc::new(NocConfig::isca2015(16));
        noc.set_utilization(0.5);
        assert_eq!(noc.clamp_events(), 0);
        noc.set_utilization(1.7);
        noc.set_utilization(2.0);
        assert_eq!(noc.clamp_events(), 2);
        assert_eq!(noc.utilization(), MAX_UTILIZATION);
        // Exactly MAX_UTILIZATION is representable, not a saturation.
        noc.set_utilization(MAX_UTILIZATION);
        assert_eq!(noc.clamp_events(), 2);
        let mut stats = StatRegistry::new();
        noc.export_stats(&mut stats);
        assert_eq!(stats.count("noc.utilization.clamp_events"), 2);
    }

    #[test]
    fn take_traffic_resets() {
        let mut noc = Noc::new(NocConfig::isca2015(4));
        noc.send(NodeId::new(0), NodeId::new(1), MessageClass::Write, 64);
        let t = noc.take_traffic();
        assert_eq!(t.total_packets(), 1);
        assert_eq!(noc.traffic().total_packets(), 0);
    }

    #[test]
    fn export_stats_includes_totals() {
        let mut noc = Noc::new(NocConfig::isca2015(4));
        noc.send(NodeId::new(0), NodeId::new(1), MessageClass::Ifetch, 64);
        let mut stats = StatRegistry::new();
        noc.export_stats(&mut stats);
        assert_eq!(stats.count("noc.total.packets"), 1);
        assert!(stats.contains("noc.utilization"));
    }

    #[test]
    fn facade_implements_the_backend_trait() {
        fn exercise<B: NocBackend>(noc: &mut B) -> Cycle {
            noc.round_trip(NodeId::new(0), NodeId::new(3), MessageClass::Read, 8, 64)
        }
        for model in NocModel::ALL {
            let mut noc = Noc::new(NocConfig::isca2015(4).with_model(model));
            assert!(exercise(&mut noc) > Cycle::ZERO, "{model}");
            assert_eq!(noc.traffic().total_packets(), 2, "{model}");
        }
    }
}
