//! The network model proper: latency computation and traffic recording.

use serde::{Deserialize, Serialize};
use simkernel::{Cycle, NodeId, StatRegistry};

use crate::packet::{MessageClass, PacketKind};
use crate::topology::MeshTopology;
use crate::traffic::TrafficAccountant;

/// Configuration of the on-chip network.
///
/// The defaults follow Table 1 of the paper: a mesh with 1-cycle links and
/// 1-cycle routers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh topology (8×8 for the 64-core configuration).
    pub topology: MeshTopology,
    /// Cycles to traverse one link.
    pub link_latency: Cycle,
    /// Cycles spent in each router.
    pub router_latency: Cycle,
    /// Strength of the utilisation-driven contention penalty.
    ///
    /// The added queueing delay per hop is
    /// `contention_factor · ρ² / (1 − ρ)` cycles, where ρ is the link
    /// utilisation estimate fed through [`Noc::set_utilization`].  With the
    /// paper's workloads ρ stays low, so the penalty is small — exactly the
    /// behaviour the paper reports ("contention in the filterDir is very
    /// low").
    pub contention_factor: f64,
}

impl NocConfig {
    /// The paper's NoC configuration for a machine with `cores` tiles.
    pub fn isca2015(cores: usize) -> Self {
        NocConfig {
            topology: MeshTopology::square_for(cores),
            link_latency: Cycle::new(1),
            router_latency: Cycle::new(1),
            contention_factor: 4.0,
        }
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::isca2015(64)
    }
}

/// The on-chip network: computes message latencies and accounts traffic.
///
/// # Example
///
/// ```
/// use noc::{MessageClass, Noc, NocConfig};
/// use simkernel::NodeId;
///
/// let mut noc = Noc::new(NocConfig::isca2015(16));
/// let lat = noc.send(NodeId::new(0), NodeId::new(15), MessageClass::Write, 64);
/// assert!(lat.as_u64() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Noc {
    config: NocConfig,
    traffic: TrafficAccountant,
    utilization: f64,
}

impl Noc {
    /// Creates a network with the given configuration.
    pub fn new(config: NocConfig) -> Self {
        Noc {
            config,
            traffic: TrafficAccountant::new(),
            utilization: 0.0,
        }
    }

    /// Returns the network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Returns the topology.
    pub fn topology(&self) -> &MeshTopology {
        &self.config.topology
    }

    /// Updates the link-utilisation estimate ρ used by the contention model.
    ///
    /// The value is clamped to `[0, 0.95]` so the queueing term stays finite.
    pub fn set_utilization(&mut self, rho: f64) {
        self.utilization = rho.clamp(0.0, 0.95);
    }

    /// Current link-utilisation estimate.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    fn packet_kind(payload_bytes: u64) -> PacketKind {
        if payload_bytes >= 32 {
            PacketKind::Data
        } else {
            PacketKind::Control
        }
    }

    fn hop_latency(&self) -> u64 {
        self.config.link_latency.as_u64() + self.config.router_latency.as_u64()
    }

    fn contention_delay_per_hop(&self) -> f64 {
        let rho = self.utilization;
        if rho <= 0.0 {
            0.0
        } else {
            self.config.contention_factor * rho * rho / (1.0 - rho)
        }
    }

    /// Latency of a packet between two nodes *without* recording traffic.
    ///
    /// Useful for "ideal" oracle models that must not perturb the traffic
    /// statistics.
    pub fn latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycle {
        let hops = self.config.topology.hops(from, to).max(1);
        let kind = Self::packet_kind(payload_bytes);
        let serialization = kind.flits().saturating_sub(1);
        let contention = (self.contention_delay_per_hop() * hops as f64).round() as u64;
        Cycle::new(hops * self.hop_latency() + serialization + contention)
    }

    /// Sends one packet and returns its latency, recording the traffic.
    ///
    /// `payload_bytes` chooses between control packets (< 32 bytes: requests,
    /// acks, invalidations) and data packets (a cache line).
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> Cycle {
        let hops = self.config.topology.hops(from, to).max(1);
        let kind = Self::packet_kind(payload_bytes);
        self.traffic.record(class, kind, hops);
        self.latency(from, to, payload_bytes)
    }

    /// Sends a request/response pair and returns the round-trip latency.
    pub fn round_trip(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: MessageClass,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Cycle {
        let there = self.send(from, to, class, request_bytes);
        let back = self.send(to, from, class, response_bytes);
        there + back
    }

    /// Broadcasts a control packet from `from` to every other node and
    /// collects one control response from each.
    ///
    /// Returns the latency until the *last* response arrives (the critical
    /// path of a filterDir broadcast, Figure 6b of the paper).
    pub fn broadcast_collect(
        &mut self,
        from: NodeId,
        class: MessageClass,
        payload_bytes: u64,
    ) -> Cycle {
        let nodes = self.config.topology.nodes();
        let mut worst = Cycle::ZERO;
        for i in 0..nodes {
            let to = NodeId::new(i);
            if to == from {
                continue;
            }
            let out = self.send(from, to, class, payload_bytes);
            let back = self.send(to, from, class, CONTROL_RESPONSE_BYTES);
            worst = worst.max(out + back);
        }
        worst
    }

    /// Read access to the accumulated traffic.
    pub fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    /// Drains the accumulated traffic, leaving the accountant empty.
    pub fn take_traffic(&mut self) -> TrafficAccountant {
        std::mem::take(&mut self.traffic)
    }

    /// Exports the traffic counters into a [`StatRegistry`].
    pub fn export_stats(&self, stats: &mut StatRegistry) {
        self.traffic.export(stats);
        stats.set_value("noc.utilization", self.utilization);
    }
}

const CONTROL_RESPONSE_BYTES: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_match_table1() {
        let c = NocConfig::default();
        assert_eq!(c.topology.nodes(), 64);
        assert_eq!(c.link_latency, Cycle::new(1));
        assert_eq!(c.router_latency, Cycle::new(1));
    }

    #[test]
    fn latency_scales_with_distance() {
        let noc = Noc::new(NocConfig::isca2015(64));
        let near = noc.latency(NodeId::new(0), NodeId::new(1), 8);
        let far = noc.latency(NodeId::new(0), NodeId::new(63), 8);
        assert!(far > near);
        // 14 hops * (1+1) cycles for a single-flit control packet.
        assert_eq!(far, Cycle::new(28));
    }

    #[test]
    fn data_packets_add_serialization_latency() {
        let noc = Noc::new(NocConfig::isca2015(64));
        let control = noc.latency(NodeId::new(0), NodeId::new(2), 8);
        let data = noc.latency(NodeId::new(0), NodeId::new(2), 64);
        assert_eq!(
            data - control,
            Cycle::new(4),
            "5-flit data packet adds 4 serialization cycles"
        );
    }

    #[test]
    fn local_messages_still_cost_one_hop() {
        let noc = Noc::new(NocConfig::isca2015(64));
        let lat = noc.latency(NodeId::new(5), NodeId::new(5), 8);
        assert_eq!(lat, Cycle::new(2));
    }

    #[test]
    fn send_records_traffic_latency_does_not() {
        let mut noc = Noc::new(NocConfig::isca2015(16));
        let _ = noc.latency(NodeId::new(0), NodeId::new(3), 64);
        assert_eq!(noc.traffic().total_packets(), 0);
        let _ = noc.send(NodeId::new(0), NodeId::new(3), MessageClass::Read, 64);
        assert_eq!(noc.traffic().total_packets(), 1);
        assert_eq!(noc.traffic().packets(MessageClass::Read), 1);
    }

    #[test]
    fn round_trip_records_two_packets() {
        let mut noc = Noc::new(NocConfig::isca2015(16));
        let rt = noc.round_trip(NodeId::new(1), NodeId::new(2), MessageClass::Dma, 8, 64);
        assert_eq!(noc.traffic().packets(MessageClass::Dma), 2);
        assert!(rt > Cycle::ZERO);
    }

    #[test]
    fn broadcast_touches_every_other_node() {
        let mut noc = Noc::new(NocConfig::isca2015(16));
        let lat = noc.broadcast_collect(NodeId::new(0), MessageClass::CohProt, 8);
        // 15 requests + 15 responses.
        assert_eq!(noc.traffic().packets(MessageClass::CohProt), 30);
        assert!(lat >= noc.latency(NodeId::new(0), NodeId::new(15), 8) * 2);
    }

    #[test]
    fn contention_increases_latency() {
        let mut noc = Noc::new(NocConfig::isca2015(64));
        let idle = noc.latency(NodeId::new(0), NodeId::new(63), 8);
        noc.set_utilization(0.8);
        let busy = noc.latency(NodeId::new(0), NodeId::new(63), 8);
        assert!(busy > idle);
        noc.set_utilization(2.0);
        assert!(noc.utilization() <= 0.95);
    }

    #[test]
    fn take_traffic_resets() {
        let mut noc = Noc::new(NocConfig::isca2015(4));
        noc.send(NodeId::new(0), NodeId::new(1), MessageClass::Write, 64);
        let t = noc.take_traffic();
        assert_eq!(t.total_packets(), 1);
        assert_eq!(noc.traffic().total_packets(), 0);
    }

    #[test]
    fn export_stats_includes_totals() {
        let mut noc = Noc::new(NocConfig::isca2015(4));
        noc.send(NodeId::new(0), NodeId::new(1), MessageClass::Ifetch, 64);
        let mut stats = StatRegistry::new();
        noc.export_stats(&mut stats);
        assert_eq!(stats.count("noc.total.packets"), 1);
        assert!(stats.contains("noc.utilization"));
    }
}
