//! 2D-mesh network-on-chip model.
//!
//! The paper evaluates a 64-core manycore connected by a mesh with 1-cycle
//! links and 1-cycle routers (Table 1).  The NoC model in this crate provides
//! the three things the rest of the simulator needs from the interconnect:
//!
//! 1. **Latency** — how many cycles a message takes between two tiles, using
//!    dimension-ordered (XY) routing with a simple utilisation-driven
//!    contention penalty.
//! 2. **Traffic accounting** — packet and flit counts per message class
//!    (instruction fetch, data read, data write, write-back/replacement, DMA
//!    and coherence-protocol traffic), which regenerates the paper's
//!    Figure 10.
//! 3. **Energy hooks** — hop-weighted flit counts that the energy model
//!    converts into router/link energy.
//!
//! # Example
//!
//! ```
//! use noc::{MeshTopology, MessageClass, Noc, NocConfig};
//! use simkernel::NodeId;
//!
//! let mut noc = Noc::new(NocConfig::isca2015(64));
//! let lat = noc.send(NodeId::new(0), NodeId::new(63), MessageClass::Read, 8);
//! assert!(lat.as_u64() >= 14, "corner-to-corner on an 8x8 mesh is at least 14 hops");
//! assert_eq!(noc.traffic().packets(MessageClass::Read), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod network;
pub mod packet;
pub mod topology;
pub mod traffic;

pub use network::{Noc, NocConfig};
pub use packet::{MessageClass, PacketKind, CONTROL_PACKET_BYTES, DATA_PACKET_BYTES};
pub use topology::MeshTopology;
pub use traffic::TrafficAccountant;
