//! 2D-mesh network-on-chip model.
//!
//! The paper evaluates a 64-core manycore connected by a mesh with 1-cycle
//! links and 1-cycle routers (Table 1).  The NoC model in this crate provides
//! the three things the rest of the simulator needs from the interconnect:
//!
//! 1. **Latency** — how many cycles a message takes between two tiles, under
//!    one of two interchangeable backends ([`NocModel`]):
//!    * the **analytic** model: XY hop count times per-hop latency plus a
//!      utilisation-driven contention penalty fed by one global ρ;
//!    * the **discrete-event** model ([`des`]): every packet XY-routed hop by
//!      hop over per-link, per-virtual-channel FIFOs with injection and
//!      ejection queues, so per-link utilisation and per-home-node queueing
//!      are measured instead of assumed.
//! 2. **Traffic accounting** — packet and flit counts per message class
//!    (instruction fetch, data read, data write, write-back/replacement, DMA
//!    and coherence-protocol traffic), which regenerates the paper's
//!    Figure 10.
//! 3. **Energy hooks** — hop-weighted flit counts that the energy model
//!    converts into router/link energy.
//!
//! # Example
//!
//! ```
//! use noc::{MeshTopology, MessageClass, Noc, NocConfig, NocModel};
//! use simkernel::NodeId;
//!
//! let mut noc = Noc::new(NocConfig::isca2015(64));
//! let lat = noc.send(NodeId::new(0), NodeId::new(63), MessageClass::Read, 8);
//! assert!(lat.as_u64() >= 14, "corner-to-corner on an 8x8 mesh is at least 14 hops");
//! assert_eq!(noc.traffic().packets(MessageClass::Read), 1);
//!
//! // The discrete-event backend answers the same question by simulation:
//! let mut des = Noc::new(NocConfig::isca2015(64).with_model(NocModel::DiscreteEvent));
//! assert_eq!(des.send(NodeId::new(0), NodeId::new(63), MessageClass::Read, 8), lat);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod des;
pub mod network;
pub mod packet;
pub mod topology;
pub mod traffic;

pub use backend::NocBackend;
pub use des::{run_synthetic, DesNoc, SyntheticReport, SyntheticTraffic};
pub use network::{AnalyticNoc, Noc, NocConfig, NocModel, MAX_UTILIZATION};
pub use packet::{
    MessageClass, PacketKind, VirtualChannel, CONTROL_PACKET_BYTES, DATA_PACKET_BYTES,
    NUM_VIRTUAL_CHANNELS,
};
pub use topology::MeshTopology;
pub use traffic::TrafficAccountant;
