//! Packet and message-class definitions.
//!
//! The paper's Figure 10 breaks NoC traffic into six groups; [`MessageClass`]
//! mirrors that categorisation exactly so the traffic comparison can be
//! regenerated.  [`PacketKind`] distinguishes control packets (requests,
//! acknowledgements, invalidations) from data packets (cache lines), which
//! have different sizes and therefore different flit counts and energy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Size in bytes of a control packet (request / ack / invalidate).
pub const CONTROL_PACKET_BYTES: u64 = 8;

/// Size in bytes of a data packet (a 64-byte cache line plus header).
pub const DATA_PACKET_BYTES: u64 = 72;

/// Width of a NoC link in bytes; one flit traverses a link per cycle.
pub const FLIT_BYTES: u64 = 16;

/// The six traffic groups of the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// Instruction fetch requests and their data responses.
    Ifetch,
    /// Data cache read requests, prefetch requests, data and acknowledgements.
    Read,
    /// Data cache write requests (including ownership upgrades), data and acks.
    Write,
    /// Write-backs, replacements, invalidations and their data/acks.
    WbRepl,
    /// DMA requests, data and acknowledgements issued by the DMACs.
    Dma,
    /// Traffic introduced by the proposed coherence protocol (filter/filterDir
    /// requests, broadcasts, invalidations, remote SPM accesses).
    CohProt,
}

impl MessageClass {
    /// All classes in the order used by the paper's figures.
    pub const ALL: [MessageClass; 6] = [
        MessageClass::Ifetch,
        MessageClass::Read,
        MessageClass::Write,
        MessageClass::WbRepl,
        MessageClass::Dma,
        MessageClass::CohProt,
    ];

    /// Short label used in reports (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Ifetch => "Ifetch",
            MessageClass::Read => "Read",
            MessageClass::Write => "Write",
            MessageClass::WbRepl => "WB-Repl",
            MessageClass::Dma => "DMA",
            MessageClass::CohProt => "CohProt",
        }
    }

    /// Stable index of the class (position in [`MessageClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            MessageClass::Ifetch => 0,
            MessageClass::Read => 1,
            MessageClass::Write => 2,
            MessageClass::WbRepl => 3,
            MessageClass::Dma => 4,
            MessageClass::CohProt => 5,
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a packet carries a payload (cache-line data) or only control
/// information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Request, acknowledgement, negative acknowledgement or invalidation.
    Control,
    /// A packet carrying a full cache line of data.
    Data,
}

impl PacketKind {
    /// The kind implied by a payload size: anything shorter than half a cache
    /// line is a control packet, everything else carries data.
    pub fn for_payload(payload_bytes: u64) -> Self {
        if payload_bytes >= 32 {
            PacketKind::Data
        } else {
            PacketKind::Control
        }
    }

    /// Packet size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PacketKind::Control => CONTROL_PACKET_BYTES,
            PacketKind::Data => DATA_PACKET_BYTES,
        }
    }

    /// Number of flits needed to carry the packet over a [`FLIT_BYTES`]-wide link.
    pub fn flits(self) -> u64 {
        self.bytes().div_ceil(FLIT_BYTES)
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketKind::Control => f.write_str("control"),
            PacketKind::Data => f.write_str("data"),
        }
    }
}

/// Number of virtual channels of the discrete-event NoC.
pub const NUM_VIRTUAL_CHANNELS: usize = 3;

/// Virtual channels of the discrete-event NoC.
///
/// Directory protocols deadlock if requests, responses and write-backs share
/// one buffer class (a stalled request FIFO can then block the very response
/// that would unstall it), so real coherence NoCs separate them — BedRock's
/// three-channel LCE/CCE transport is the canonical example.  The
/// discrete-event backend gives each channel its own per-link FIFO so the
/// classes cannot deadlock-couple; the analytic backend needs no channels
/// because it never queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VirtualChannel {
    /// Requests, acknowledgements and invalidations (control packets).
    Request,
    /// Data-bearing responses (cache lines, SPM transfers).
    Response,
    /// Write-backs and replacements, which must drain independently.
    Writeback,
}

impl VirtualChannel {
    /// All virtual channels, in index order.
    pub const ALL: [VirtualChannel; NUM_VIRTUAL_CHANNELS] = [
        VirtualChannel::Request,
        VirtualChannel::Response,
        VirtualChannel::Writeback,
    ];

    /// The channel a packet travels on, from its traffic class and kind.
    pub fn for_packet(class: MessageClass, kind: PacketKind) -> Self {
        match (class, kind) {
            (MessageClass::WbRepl, _) => VirtualChannel::Writeback,
            (_, PacketKind::Data) => VirtualChannel::Response,
            (_, PacketKind::Control) => VirtualChannel::Request,
        }
    }

    /// Stable index of the channel (position in [`VirtualChannel::ALL`]).
    pub fn index(self) -> usize {
        match self {
            VirtualChannel::Request => 0,
            VirtualChannel::Response => 1,
            VirtualChannel::Writeback => 2,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            VirtualChannel::Request => "req",
            VirtualChannel::Response => "resp",
            VirtualChannel::Writeback => "wb",
        }
    }
}

impl fmt::Display for VirtualChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_match_paper_legend() {
        assert_eq!(MessageClass::WbRepl.label(), "WB-Repl");
        assert_eq!(MessageClass::CohProt.to_string(), "CohProt");
        assert_eq!(MessageClass::ALL.len(), 6);
    }

    #[test]
    fn class_index_is_stable_and_unique() {
        for (i, c) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn packet_sizes_and_flits() {
        assert_eq!(PacketKind::Control.bytes(), 8);
        assert_eq!(PacketKind::Data.bytes(), 72);
        assert_eq!(PacketKind::Control.flits(), 1);
        assert_eq!(PacketKind::Data.flits(), 5);
        assert_eq!(PacketKind::Data.to_string(), "data");
        assert_eq!(PacketKind::for_payload(8), PacketKind::Control);
        assert_eq!(PacketKind::for_payload(64), PacketKind::Data);
    }

    #[test]
    fn virtual_channel_mapping_separates_classes() {
        // Write-backs never share a channel with anything else.
        assert_eq!(
            VirtualChannel::for_packet(MessageClass::WbRepl, PacketKind::Control),
            VirtualChannel::Writeback
        );
        assert_eq!(
            VirtualChannel::for_packet(MessageClass::WbRepl, PacketKind::Data),
            VirtualChannel::Writeback
        );
        // Requests and responses split on the packet kind.
        assert_eq!(
            VirtualChannel::for_packet(MessageClass::Read, PacketKind::Control),
            VirtualChannel::Request
        );
        assert_eq!(
            VirtualChannel::for_packet(MessageClass::Read, PacketKind::Data),
            VirtualChannel::Response
        );
        for (i, vc) in VirtualChannel::ALL.iter().enumerate() {
            assert_eq!(vc.index(), i);
            assert!(!vc.label().is_empty());
        }
        assert_eq!(VirtualChannel::ALL.len(), NUM_VIRTUAL_CHANNELS);
        assert_eq!(VirtualChannel::Writeback.to_string(), "wb");
    }
}
