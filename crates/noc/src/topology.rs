//! Mesh topology and dimension-ordered routing.

use serde::{Deserialize, Serialize};
use simkernel::NodeId;

/// A 2D mesh of `cols × rows` tiles with XY (dimension-ordered) routing.
///
/// Nodes are numbered row-major: node `i` sits at column `i % cols`, row
/// `i / cols`.  The paper's 64-core configuration is an 8×8 mesh.
///
/// # Example
///
/// ```
/// use noc::MeshTopology;
/// use simkernel::NodeId;
///
/// let mesh = MeshTopology::square_for(64);
/// assert_eq!(mesh.cols(), 8);
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(63)), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshTopology {
    cols: usize,
    rows: usize,
}

impl MeshTopology {
    /// Creates a mesh with the given number of columns and rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        MeshTopology { cols, rows }
    }

    /// Creates the most square mesh that holds exactly `nodes` tiles.
    ///
    /// For perfect squares this is the `√n × √n` mesh (8×8 for 64 cores);
    /// otherwise the widest factorisation with `cols ≥ rows` is chosen.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn square_for(nodes: usize) -> Self {
        assert!(nodes > 0, "mesh must have at least one node");
        let mut rows = (nodes as f64).sqrt().floor() as usize;
        while rows > 1 && !nodes.is_multiple_of(rows) {
            rows -= 1;
        }
        let cols = nodes / rows;
        MeshTopology { cols, rows }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Returns the `(column, row)` coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the mesh.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let idx = node.index();
        assert!(
            idx < self.nodes(),
            "node {idx} outside {}x{} mesh",
            self.cols,
            self.rows
        );
        // Meshes built for power-of-two core counts (the common case) can
        // decompose the row-major index with a mask and a shift instead of
        // an integer division, which sits on the latency path of every
        // `hops`/`route` call.
        if self.cols.is_power_of_two() {
            (idx & (self.cols - 1), idx >> self.cols.trailing_zeros())
        } else {
            (idx % self.cols, idx / self.cols)
        }
    }

    /// Returns the node at a `(column, row)` coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node_at(&self, col: usize, row: usize) -> NodeId {
        assert!(
            col < self.cols && row < self.rows,
            "coordinate outside mesh"
        );
        NodeId::new(row * self.cols + col)
    }

    /// Manhattan (XY-routed) hop count between two nodes.
    #[inline]
    pub fn hops(&self, from: NodeId, to: NodeId) -> u64 {
        let (fc, fr) = self.coords(from);
        let (tc, tr) = self.coords(to);
        (fc.abs_diff(tc) + fr.abs_diff(tr)) as u64
    }

    /// The sequence of nodes visited by XY routing from `from` to `to`,
    /// including both endpoints.
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.hops(from, to) as usize + 1);
        self.route_into(from, to, &mut path);
        path
    }

    /// Fills `path` with the XY route from `from` to `to` (both endpoints
    /// included), clearing any previous contents.  Lets callers on the
    /// per-packet path reuse one buffer instead of allocating per route.
    pub fn route_into(&self, from: NodeId, to: NodeId, path: &mut Vec<NodeId>) {
        path.clear();
        let (fc, fr) = self.coords(from);
        let (tc, tr) = self.coords(to);
        path.reserve(fc.abs_diff(tc) + fr.abs_diff(tr) + 1);
        let mut c = fc;
        let mut r = fr;
        path.push(self.node_at(c, r));
        while c != tc {
            if c < tc {
                c += 1;
            } else {
                c -= 1;
            }
            path.push(self.node_at(c, r));
        }
        while r != tr {
            if r < tr {
                r += 1;
            } else {
                r -= 1;
            }
            path.push(self.node_at(c, r));
        }
    }

    /// Average hop count from `from` to every node of the mesh (including itself).
    ///
    /// Used by the analytic broadcast-cost model of the coherence protocol.
    pub fn mean_hops_from(&self, from: NodeId) -> f64 {
        let total: u64 = (0..self.nodes())
            .map(|i| self.hops(from, NodeId::new(i)))
            .sum();
        total as f64 / self.nodes() as f64
    }

    /// The largest hop count between any pair of nodes (the mesh diameter).
    pub fn diameter(&self) -> u64 {
        (self.cols - 1 + self.rows - 1) as u64
    }

    /// Number of directed links of the mesh: each of the
    /// `(cols−1)·rows` horizontal and `cols·(rows−1)` vertical neighbour
    /// pairs carries one link per direction.
    ///
    /// This is the capacity denominator shared by the discrete-event
    /// backend's measured utilisation and the synthetic-traffic ρ estimate
    /// fed to the analytic model.
    pub fn directed_links(&self) -> usize {
        2 * ((self.cols - 1) * self.rows + self.cols * (self.rows - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_for_perfect_square() {
        let m = MeshTopology::square_for(64);
        assert_eq!((m.cols(), m.rows()), (8, 8));
        assert_eq!(m.nodes(), 64);
        assert_eq!(m.diameter(), 14);
    }

    #[test]
    fn square_for_non_square_counts() {
        let m = MeshTopology::square_for(32);
        assert_eq!(m.nodes(), 32);
        assert!(m.cols() >= m.rows());
        let m = MeshTopology::square_for(1);
        assert_eq!((m.cols(), m.rows()), (1, 1));
        let m = MeshTopology::square_for(7);
        assert_eq!(m.nodes(), 7);
    }

    #[test]
    fn coords_roundtrip() {
        let m = MeshTopology::new(8, 8);
        for i in 0..64 {
            let n = NodeId::new(i);
            let (c, r) = m.coords(n);
            assert_eq!(m.node_at(c, r), n);
        }
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = MeshTopology::new(8, 8);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(0)), 0);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(7)), 7);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(56)), 7);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(63)), 14);
        assert_eq!(m.hops(NodeId::new(63), NodeId::new(0)), 14);
    }

    #[test]
    fn route_is_contiguous_and_correct_length() {
        let m = MeshTopology::new(8, 8);
        let path = m.route(NodeId::new(3), NodeId::new(60));
        assert_eq!(path.first(), Some(&NodeId::new(3)));
        assert_eq!(path.last(), Some(&NodeId::new(60)));
        assert_eq!(
            path.len() as u64,
            m.hops(NodeId::new(3), NodeId::new(60)) + 1
        );
        for pair in path.windows(2) {
            assert_eq!(
                m.hops(pair[0], pair[1]),
                1,
                "route must move one hop at a time"
            );
        }
    }

    #[test]
    fn mean_hops_reasonable() {
        let m = MeshTopology::new(8, 8);
        let corner = m.mean_hops_from(NodeId::new(0));
        let center = m.mean_hops_from(NodeId::new(27));
        assert!(
            corner > center,
            "corner should be further from everyone on average"
        );
        assert!(corner <= m.diameter() as f64);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_panics() {
        MeshTopology::new(2, 2).coords(NodeId::new(4));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// On every mesh from 2×2 to 8×8, the XY route between any two
            /// nodes has exactly the Manhattan-distance hop count, the hop
            /// count is symmetric, and the route moves one hop at a time.
            #[test]
            fn xy_route_is_manhattan_and_symmetric(cols in 2usize..=8, rows in 2usize..=8) {
                let mesh = MeshTopology::new(cols, rows);
                for from in 0..mesh.nodes() {
                    for to in 0..mesh.nodes() {
                        let (from, to) = (NodeId::new(from), NodeId::new(to));
                        let (fc, fr) = mesh.coords(from);
                        let (tc, tr) = mesh.coords(to);
                        let manhattan = (fc.abs_diff(tc) + fr.abs_diff(tr)) as u64;
                        prop_assert_eq!(mesh.hops(from, to), manhattan);
                        prop_assert_eq!(mesh.hops(to, from), manhattan, "hops must be symmetric");
                        let route = mesh.route(from, to);
                        prop_assert_eq!(route.len() as u64, manhattan + 1);
                        prop_assert_eq!(route.first(), Some(&from));
                        prop_assert_eq!(route.last(), Some(&to));
                        for pair in route.windows(2) {
                            prop_assert_eq!(mesh.hops(pair[0], pair[1]), 1);
                        }
                    }
                }
            }

            /// Hop counts never exceed the diameter, and the diameter is
            /// attained by the opposite corners.
            #[test]
            fn diameter_bounds_every_pair(cols in 2usize..=8, rows in 2usize..=8) {
                let mesh = MeshTopology::new(cols, rows);
                for from in 0..mesh.nodes() {
                    for to in 0..mesh.nodes() {
                        prop_assert!(mesh.hops(NodeId::new(from), NodeId::new(to)) <= mesh.diameter());
                    }
                }
                let far = mesh.node_at(cols - 1, rows - 1);
                prop_assert_eq!(mesh.hops(mesh.node_at(0, 0), far), mesh.diameter());
            }
        }
    }
}
