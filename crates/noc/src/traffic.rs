//! Per-class traffic accounting.

use std::fmt;

use serde::{Deserialize, Serialize};
use simkernel::StatRegistry;

use crate::packet::{MessageClass, PacketKind};

/// Accumulates packet, flit and hop counts per [`MessageClass`].
///
/// The paper reports NoC traffic as packet counts split into six groups
/// (Figure 10); the energy model additionally needs hop-weighted flit counts
/// because router and link energy scale with how far each flit travels.
///
/// # Example
///
/// ```
/// use noc::{MessageClass, PacketKind, TrafficAccountant};
///
/// let mut t = TrafficAccountant::new();
/// t.record(MessageClass::Read, PacketKind::Control, 3);
/// t.record(MessageClass::Read, PacketKind::Data, 3);
/// assert_eq!(t.packets(MessageClass::Read), 2);
/// assert_eq!(t.total_packets(), 2);
/// assert!(t.flit_hops(MessageClass::Read) > 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficAccountant {
    packets: [u64; 6],
    flits: [u64; 6],
    flit_hops: [u64; 6],
    bytes: [u64; 6],
}

impl TrafficAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet of the given class travelling `hops` hops.
    pub fn record(&mut self, class: MessageClass, kind: PacketKind, hops: u64) {
        let i = class.index();
        self.packets[i] += 1;
        self.flits[i] += kind.flits();
        self.flit_hops[i] += kind.flits() * hops.max(1);
        self.bytes[i] += kind.bytes();
    }

    /// Number of packets recorded for a class.
    pub fn packets(&self, class: MessageClass) -> u64 {
        self.packets[class.index()]
    }

    /// Number of flits recorded for a class.
    pub fn flits(&self, class: MessageClass) -> u64 {
        self.flits[class.index()]
    }

    /// Hop-weighted flit count for a class (energy proxy).
    pub fn flit_hops(&self, class: MessageClass) -> u64 {
        self.flit_hops[class.index()]
    }

    /// Bytes injected for a class.
    pub fn bytes(&self, class: MessageClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total packets over all classes.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total flits over all classes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Total hop-weighted flits over all classes.
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops.iter().sum()
    }

    /// Merges the counts of another accountant into this one.
    pub fn merge(&mut self, other: &TrafficAccountant) {
        for i in 0..6 {
            self.packets[i] += other.packets[i];
            self.flits[i] += other.flits[i];
            self.flit_hops[i] += other.flit_hops[i];
            self.bytes[i] += other.bytes[i];
        }
    }

    /// Exports the counts into a [`StatRegistry`] under `noc.<class>.*` names.
    pub fn export(&self, stats: &mut StatRegistry) {
        for class in MessageClass::ALL {
            let i = class.index();
            let label = class.label().to_lowercase().replace('-', "_");
            stats.add_count(&format!("noc.{label}.packets"), self.packets[i]);
            stats.add_count(&format!("noc.{label}.flits"), self.flits[i]);
            stats.add_count(&format!("noc.{label}.flit_hops"), self.flit_hops[i]);
        }
        stats.add_count("noc.total.packets", self.total_packets());
        stats.add_count("noc.total.flits", self.total_flits());
        stats.add_count("noc.total.flit_hops", self.total_flit_hops());
    }

    /// Per-class packet counts in [`MessageClass::ALL`] order.
    pub fn packets_by_class(&self) -> [u64; 6] {
        self.packets
    }

    /// The complete internal state as `[packets, flits, flit_hops, bytes]`
    /// rows (each in [`MessageClass::ALL`] order), for serialization.
    pub fn snapshot(&self) -> [[u64; 6]; 4] {
        [self.packets, self.flits, self.flit_hops, self.bytes]
    }

    /// Reconstructs an accountant from a [`TrafficAccountant::snapshot`].
    pub fn from_snapshot(snapshot: [[u64; 6]; 4]) -> Self {
        let [packets, flits, flit_hops, bytes] = snapshot;
        TrafficAccountant {
            packets,
            flits,
            flit_hops,
            bytes,
        }
    }
}

impl fmt::Display for TrafficAccountant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in MessageClass::ALL {
            writeln!(
                f,
                "{:<8} packets={:>12} flits={:>12} flit·hops={:>14}",
                class.label(),
                self.packets(class),
                self.flits(class),
                self.flit_hops(class)
            )?;
        }
        writeln!(f, "total    packets={:>12}", self.total_packets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_class() {
        let mut t = TrafficAccountant::new();
        t.record(MessageClass::Dma, PacketKind::Data, 4);
        t.record(MessageClass::Dma, PacketKind::Control, 4);
        t.record(MessageClass::CohProt, PacketKind::Control, 2);
        assert_eq!(t.packets(MessageClass::Dma), 2);
        assert_eq!(t.packets(MessageClass::CohProt), 1);
        assert_eq!(t.packets(MessageClass::Read), 0);
        assert_eq!(t.flits(MessageClass::Dma), 5 + 1);
        assert_eq!(t.flit_hops(MessageClass::Dma), 5 * 4 + 4);
        assert_eq!(t.bytes(MessageClass::Dma), 72 + 8);
        assert_eq!(t.total_packets(), 3);
        assert_eq!(t.total_flits(), 7);
    }

    #[test]
    fn zero_hop_counts_as_one() {
        // Local (same-tile) transfers still traverse the local router once.
        let mut t = TrafficAccountant::new();
        t.record(MessageClass::Read, PacketKind::Control, 0);
        assert_eq!(t.flit_hops(MessageClass::Read), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TrafficAccountant::new();
        a.record(MessageClass::Read, PacketKind::Data, 3);
        let mut b = TrafficAccountant::new();
        b.record(MessageClass::Read, PacketKind::Data, 5);
        b.record(MessageClass::Write, PacketKind::Control, 1);
        a.merge(&b);
        assert_eq!(a.packets(MessageClass::Read), 2);
        assert_eq!(a.packets(MessageClass::Write), 1);
        assert_eq!(a.total_flit_hops(), 5 * 3 + 5 * 5 + 1);
    }

    #[test]
    fn export_to_registry() {
        let mut t = TrafficAccountant::new();
        t.record(MessageClass::WbRepl, PacketKind::Data, 2);
        let mut stats = StatRegistry::new();
        t.export(&mut stats);
        assert_eq!(stats.count("noc.wb_repl.packets"), 1);
        assert_eq!(stats.count("noc.total.packets"), 1);
        assert_eq!(stats.count("noc.wb_repl.flits"), 5);
    }

    #[test]
    fn snapshot_round_trips_all_counts() {
        let mut t = TrafficAccountant::new();
        t.record(MessageClass::Dma, PacketKind::Data, 4);
        t.record(MessageClass::Read, PacketKind::Control, 2);
        let restored = TrafficAccountant::from_snapshot(t.snapshot());
        assert_eq!(restored, t);
        assert_eq!(restored.total_flit_hops(), t.total_flit_hops());
        assert_eq!(
            restored.bytes(MessageClass::Dma),
            t.bytes(MessageClass::Dma)
        );
    }

    #[test]
    fn display_contains_all_classes() {
        let t = TrafficAccountant::new();
        let s = t.to_string();
        for class in MessageClass::ALL {
            assert!(s.contains(class.label()));
        }
    }
}
