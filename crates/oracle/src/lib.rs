//! Differential coherence oracle: a flat, sequentially-consistent reference
//! memory replayed against the detailed memory system.
//!
//! The simulator's hierarchy ([`mem::MemorySystem`]), scratchpads and the
//! SPM coherence protocol move *data values* between many physical copies
//! (see `mem::values`).  A correct protocol makes all that movement
//! invisible: every load — demand, guarded-and-diverted, or a DMA bus read —
//! must observe exactly what a flat memory would hold at that point of the
//! (deterministic) execution order.  [`CoherenceOracle`] is that flat
//! memory, plus the bookkeeping to report any disagreement as a precise,
//! reproducible [`Divergence`].
//!
//! The oracle is driven *inside* the execution engines, one call per
//! interpreted trace operation, so the detailed model and the reference see
//! the same global interleaving by construction: a divergence always means
//! the hardware model returned data from the wrong place (stale copy, wrong
//! owner, missed invalidation) — never that the two models raced.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use mem::{word_addr, Addr};

/// A flat, word-granular, sequentially-consistent memory.
///
/// # Example
///
/// ```
/// use oracle::RefMemory;
/// use mem::Addr;
///
/// let mut m = RefMemory::new();
/// assert_eq!(m.load(Addr::new(0x100)), 0, "unwritten memory is zero");
/// m.store(Addr::new(0x104), 7);
/// assert_eq!(m.load(Addr::new(0x100)), 7, "word granular");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefMemory {
    words: HashMap<u64, u64>,
}

impl RefMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        RefMemory::default()
    }

    /// Reads the word containing `addr` (zero if never written).
    pub fn load(&self, addr: Addr) -> u64 {
        self.words.get(&word_addr(addr).raw()).copied().unwrap_or(0)
    }

    /// Writes the word containing `addr`.
    pub fn store(&mut self, addr: Addr, value: u64) {
        if value == 0 {
            self.words.remove(&word_addr(addr).raw());
        } else {
            self.words.insert(word_addr(addr).raw(), value);
        }
    }

    /// Number of non-zero words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if every word is zero.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Every non-zero word as `(word address, value)`, sorted.
    pub fn image(&self) -> BTreeMap<u64, u64> {
        self.words.iter().map(|(a, v)| (*a, *v)).collect()
    }
}

/// One observed disagreement between the detailed model and the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Global index of the trace operation (1-based, in interpretation
    /// order) that observed the wrong value.
    pub op_index: u64,
    /// The core that issued the access.
    pub core: usize,
    /// The accessed address.
    pub addr: Addr,
    /// What the flat reference memory holds.
    pub expected: u64,
    /// What the detailed model returned.
    pub observed: u64,
    /// The access path that observed the value (`"load(gm)"`,
    /// `"guarded-load(remote-spm)"`, `"dma-get"`, ...).
    pub access: String,
    /// Protocol-side context captured at divergence time (SPMDir / filter /
    /// filterDir state for the address), for the divergence report.
    pub context: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op #{} core {} {} at {}: observed {:#x}, oracle expects {:#x}",
            self.op_index, self.core, self.access, self.addr, self.observed, self.expected
        )?;
        if !self.context.is_empty() {
            write!(f, "\n    {}", self.context)?;
        }
        Ok(())
    }
}

/// Summary of one checked run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Trace operations interpreted.
    pub ops: u64,
    /// Individual load values compared.
    pub loads_checked: u64,
    /// Words compared on behalf of DMA transfers.
    pub dma_words_checked: u64,
    /// Stores applied to the reference memory.
    pub stores_applied: u64,
    /// Accesses outside the modelled value contract (e.g. an SPM-class
    /// access falling outside its currently mapped chunk), skipped on both
    /// sides.
    pub unmodeled: u64,
    /// The divergences found (capped; see [`CoherenceOracle::new`]).
    pub divergences: Vec<Divergence>,
}

impl OracleReport {
    /// Returns `true` if every checked value agreed.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ops, {} loads + {} dma words checked, {} stores, {} unmodeled, {} divergences",
            self.ops,
            self.loads_checked,
            self.dma_words_checked,
            self.stores_applied,
            self.unmodeled,
            self.divergences.len()
        )
    }
}

/// The differential checker: reference memory + divergence collection.
#[derive(Debug)]
pub struct CoherenceOracle {
    mem: RefMemory,
    report: OracleReport,
    max_divergences: usize,
}

impl Default for CoherenceOracle {
    fn default() -> Self {
        Self::new(16)
    }
}

impl CoherenceOracle {
    /// A checker that keeps at most `max_divergences` reports (counting
    /// continues; the cap only bounds the stored details).
    pub fn new(max_divergences: usize) -> Self {
        CoherenceOracle {
            mem: RefMemory::new(),
            report: OracleReport::default(),
            max_divergences: max_divergences.max(1),
        }
    }

    /// Read access to the reference memory.
    pub fn memory(&self) -> &RefMemory {
        &self.mem
    }

    /// Notes one interpreted trace operation (drives `op_index`).
    pub fn begin_op(&mut self) -> u64 {
        self.report.ops += 1;
        self.report.ops
    }

    /// Applies a store to the reference memory.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.report.stores_applied += 1;
        self.mem.store(addr, value);
    }

    /// The value the reference memory holds for `addr`.
    pub fn expected(&self, addr: Addr) -> u64 {
        self.mem.load(addr)
    }

    /// Notes an access skipped on both sides (outside the value contract).
    pub fn note_unmodeled(&mut self) {
        self.report.unmodeled += 1;
    }

    /// Checks one observed load value against the reference.
    ///
    /// `context` is only rendered when the values disagree.
    pub fn check_load(
        &mut self,
        core: usize,
        addr: Addr,
        observed: u64,
        access: &str,
        context: impl FnOnce() -> String,
    ) {
        self.report.loads_checked += 1;
        self.record(core, addr, observed, access, context);
    }

    /// Checks one word read by a DMA transfer against the reference.
    pub fn check_dma_word(
        &mut self,
        core: usize,
        addr: Addr,
        observed: u64,
        context: impl FnOnce() -> String,
    ) {
        self.report.dma_words_checked += 1;
        self.record(core, addr, observed, "dma-get", context);
    }

    fn record(
        &mut self,
        core: usize,
        addr: Addr,
        observed: u64,
        access: &str,
        context: impl FnOnce() -> String,
    ) {
        let expected = self.mem.load(addr);
        if observed == expected {
            return;
        }
        if self.report.divergences.len() < self.max_divergences {
            let d = Divergence {
                op_index: self.report.ops,
                core,
                addr,
                expected,
                observed,
                access: access.to_owned(),
                context: context(),
            };
            self.report.divergences.push(d);
        }
    }

    /// Returns `true` while no divergence has been observed.
    pub fn ok(&self) -> bool {
        self.report.divergences.is_empty()
    }

    /// The accumulated report.
    pub fn report(&self) -> &OracleReport {
        &self.report
    }

    /// Consumes the checker, returning the report.
    pub fn into_report(self) -> OracleReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_memory_is_word_granular_and_sparse() {
        let mut m = RefMemory::new();
        assert!(m.is_empty());
        m.store(Addr::new(0x10), 3);
        m.store(Addr::new(0x18), 4);
        assert_eq!(m.load(Addr::new(0x17)), 3);
        assert_eq!(m.len(), 2);
        m.store(Addr::new(0x10), 0);
        assert_eq!(m.len(), 1, "zero stores stay sparse");
        assert_eq!(m.image().into_iter().collect::<Vec<_>>(), vec![(0x18, 4)]);
    }

    #[test]
    fn matching_loads_pass_and_mismatches_are_reported() {
        let mut o = CoherenceOracle::new(4);
        o.begin_op();
        o.store(Addr::new(0x100), 7);
        o.begin_op();
        o.check_load(0, Addr::new(0x100), 7, "load(gm)", || unreachable!());
        assert!(o.ok());
        o.begin_op();
        o.check_load(1, Addr::new(0x100), 9, "load(gm)", || "ctx".into());
        assert!(!o.ok());
        let d = &o.report().divergences[0];
        assert_eq!(d.op_index, 3);
        assert_eq!(d.core, 1);
        assert_eq!(d.expected, 7);
        assert_eq!(d.observed, 9);
        assert_eq!(d.context, "ctx");
        assert!(d.to_string().contains("oracle expects 0x7"));
    }

    #[test]
    fn divergence_details_are_capped_but_checks_continue() {
        let mut o = CoherenceOracle::new(2);
        for i in 0..5 {
            o.begin_op();
            o.check_load(0, Addr::new(0x8 * i), 1, "load(gm)", String::new);
        }
        assert_eq!(o.report().divergences.len(), 2);
        assert_eq!(o.report().loads_checked, 5);
        assert!(!o.report().ok());
        assert!(o.report().summary().contains("2 divergences"));
    }

    #[test]
    fn dma_words_are_checked_separately() {
        let mut o = CoherenceOracle::default();
        o.begin_op();
        o.check_dma_word(2, Addr::new(0x40), 0, String::new);
        assert!(o.ok());
        assert_eq!(o.report().dma_words_checked, 1);
        o.note_unmodeled();
        assert_eq!(o.into_report().unmodeled, 1);
    }
}
