//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names the axes of a parameter-space study — core counts,
//! SPM / filter / directory sizes, benchmarks, machine kinds, data-set scale
//! multipliers — and enumerates their cross-product as [`RunDescriptor`]s.
//! A descriptor is plain data: the `system` crate lowers it to a concrete
//! `SystemConfig` + benchmark spec + machine kind, which keeps this crate
//! free of any dependency on the simulator layers above it.

use serde::{Deserialize, Serialize};

use crate::hash::{f64_field, CacheKey};

/// Canonical machine-kind identifiers, in the paper's comparison order.
///
/// These are the strings a descriptor's `machine` field uses; `system`
/// maps them onto its `MachineKind` enum.
pub const MACHINE_IDS: [&str; 3] = ["cache-only", "hybrid-ideal", "hybrid-proposed"];

/// Canonical NoC-model identifiers.
///
/// These are the strings a descriptor's `noc_model` field uses; `system`
/// maps them onto the `noc::NocModel` enum.
pub const NOC_MODEL_IDS: [&str; 2] = ["analytic", "discrete-event"];

/// Canonical execution-engine identifiers.
///
/// These are the strings a descriptor's `engine` field uses; `system` maps
/// them onto its `ExecutionEngine` enum.
pub const ENGINE_IDS: [&str; 3] = ["legacy", "interleaved", "parallel"];

/// Canonical coherence-protocol identifiers, the paper's protocol first.
///
/// These are the strings a descriptor's `protocol` field uses; `system` maps
/// them onto its `CoherenceProtocol` enum.  The axis only matters on the
/// `hybrid-proposed` machine — the other machines always run the ideal
/// oracle.
pub const PROTOCOL_IDS: [&str; 2] = ["filterdir", "directory"];

/// One point of a campaign: everything needed to reproduce one simulation
/// run, as plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunDescriptor {
    /// Benchmark name (`"CG"`, `"IS"`, …).
    pub benchmark: String,
    /// Machine kind identifier (one of [`MACHINE_IDS`]).
    pub machine: String,
    /// Number of cores / tiles.
    pub cores: usize,
    /// Extra data-set scale multiplier on top of the benchmark's
    /// recommended scale.
    pub scale_multiplier: f64,
    /// Per-core SPM size override in KiB (`None` = the Table 1 default).
    pub spm_kib: Option<u64>,
    /// Per-core filter entry-count override (`None` = the Table 1 default).
    pub filter_entries: Option<usize>,
    /// filterDir entry-count override (`None` = the Table 1 default).
    pub filterdir_entries: Option<usize>,
    /// NoC model override (one of [`NOC_MODEL_IDS`]; `None` = analytic).
    pub noc_model: Option<String>,
    /// Execution-engine override (one of [`ENGINE_IDS`]; `None` = legacy).
    pub engine: Option<String>,
    /// Coherence-protocol override (one of [`PROTOCOL_IDS`]; `None` = the
    /// paper's filterDir protocol).
    pub protocol: Option<String>,
    /// Use the scaled-down test machine (`SystemConfig::small`) instead of
    /// the Table 1 machine — for quick campaigns, tests and CI.
    pub small_machine: bool,
}

impl RunDescriptor {
    /// A descriptor with the Table 1 defaults for everything but the three
    /// mandatory axes.
    pub fn new(benchmark: &str, machine: &str, cores: usize) -> Self {
        RunDescriptor {
            benchmark: benchmark.to_owned(),
            machine: machine.to_owned(),
            cores,
            scale_multiplier: 1.0,
            spm_kib: None,
            filter_entries: None,
            filterdir_entries: None,
            noc_model: None,
            engine: None,
            protocol: None,
            small_machine: false,
        }
    }

    /// The descriptor's content as canonical `(name, value)` fields.
    ///
    /// This is the substrate for [`RunDescriptor::seed`]; the field *values*
    /// are bit-exact (floats are rendered as their bit patterns), so two
    /// descriptors share fields iff they describe the same run.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        fn opt<T: ToString>(v: &Option<T>) -> String {
            v.as_ref()
                .map_or_else(|| "default".to_owned(), T::to_string)
        }
        vec![
            ("benchmark", self.benchmark.clone()),
            ("machine", self.machine.clone()),
            ("cores", self.cores.to_string()),
            ("scale_multiplier", f64_field(self.scale_multiplier)),
            ("spm_kib", opt(&self.spm_kib)),
            ("filter_entries", opt(&self.filter_entries)),
            ("filterdir_entries", opt(&self.filterdir_entries)),
            ("noc_model", opt(&self.noc_model)),
            ("engine", opt(&self.engine)),
            ("protocol", opt(&self.protocol)),
            ("small_machine", self.small_machine.to_string()),
        ]
    }

    /// The deterministic per-point seed for the workload address streams.
    ///
    /// Derived purely from the descriptor's content — never from the worker
    /// that happens to execute the point — so serial and parallel campaign
    /// runs are bit-identical.  The machine, NoC-model, engine and protocol
    /// axes are deliberately excluded: the machine kinds (NoC backends,
    /// execution engines, coherence backends) of one sweep point must stream
    /// the *same* addresses for their comparison (speedup, protocol
    /// overhead, analytic-vs-measured contention, the replay-ordering
    /// artifact, filterDir-vs-directory) to be apples-to-apples, exactly as
    /// the paper runs one workload per machine.
    pub fn seed(&self) -> u64 {
        let fields = self.fields().into_iter().filter(|(n, _)| {
            *n != "machine" && *n != "noc_model" && *n != "engine" && *n != "protocol"
        });
        CacheKey::from_fields(fields).as_u64()
    }

    /// A short human-readable label, e.g. `CG/hybrid-proposed/16c`.
    pub fn label(&self) -> String {
        let mut label = format!("{}/{}/{}c", self.benchmark, self.machine, self.cores);
        if self.scale_multiplier != 1.0 {
            label.push_str(&format!("/x{}", self.scale_multiplier));
        }
        if let Some(kib) = self.spm_kib {
            label.push_str(&format!("/spm{kib}K"));
        }
        if let Some(n) = self.filter_entries {
            label.push_str(&format!("/flt{n}"));
        }
        if let Some(n) = self.filterdir_entries {
            label.push_str(&format!("/fdir{n}"));
        }
        if let Some(model) = &self.noc_model {
            label.push_str(&format!("/{model}"));
        }
        if let Some(engine) = &self.engine {
            label.push_str(&format!("/{engine}"));
        }
        if let Some(protocol) = &self.protocol {
            label.push_str(&format!("/{protocol}"));
        }
        label
    }
}

/// The axes of a campaign; [`SweepSpec::points`] takes their cross-product.
///
/// # Example
///
/// ```
/// use campaign::SweepSpec;
///
/// let spec = SweepSpec::new(&["CG", "IS"])
///     .with_cores(&[8, 16])
///     .with_machines(&["cache-only", "hybrid-proposed"]);
/// assert_eq!(spec.len(), 2 * 2 * 2);
/// assert_eq!(spec.points()[0].label(), "CG/cache-only/8c");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Benchmarks to sweep.
    pub benchmarks: Vec<String>,
    /// Machine kinds to sweep (defaults to all of [`MACHINE_IDS`]).
    pub machines: Vec<String>,
    /// Core counts to sweep (defaults to the paper's 64).
    pub core_counts: Vec<usize>,
    /// Data-set scale multipliers to sweep (defaults to 1.0).
    pub scale_multipliers: Vec<f64>,
    /// SPM sizes (KiB) to sweep; `None` entries use the Table 1 default.
    pub spm_kib: Vec<Option<u64>>,
    /// Filter entry counts to sweep; `None` entries use the Table 1 default.
    pub filter_entries: Vec<Option<usize>>,
    /// filterDir entry counts to sweep; `None` uses the Table 1 default.
    pub filterdir_entries: Vec<Option<usize>>,
    /// NoC models to sweep (one of [`NOC_MODEL_IDS`]; `None` = analytic).
    pub noc_models: Vec<Option<String>>,
    /// Execution engines to sweep (one of [`ENGINE_IDS`]; `None` = legacy).
    pub engines: Vec<Option<String>>,
    /// Coherence protocols to sweep (one of [`PROTOCOL_IDS`]; `None` = the
    /// paper's filterDir protocol).
    pub protocols: Vec<Option<String>>,
    /// Lower every point onto the scaled-down test machine.
    pub small_machine: bool,
}

impl SweepSpec {
    /// A sweep over `benchmarks` with every other axis at its default.
    pub fn new(benchmarks: &[&str]) -> Self {
        SweepSpec {
            benchmarks: benchmarks.iter().map(|s| s.to_string()).collect(),
            machines: MACHINE_IDS.iter().map(|s| s.to_string()).collect(),
            core_counts: vec![64],
            scale_multipliers: vec![1.0],
            spm_kib: vec![None],
            filter_entries: vec![None],
            filterdir_entries: vec![None],
            noc_models: vec![None],
            engines: vec![None],
            protocols: vec![None],
            small_machine: false,
        }
    }

    /// Replaces the machine axis.
    pub fn with_machines(mut self, machines: &[&str]) -> Self {
        self.machines = machines.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Replaces the core-count axis.
    pub fn with_cores(mut self, core_counts: &[usize]) -> Self {
        self.core_counts = core_counts.to_vec();
        self
    }

    /// Replaces the scale-multiplier axis.
    pub fn with_scales(mut self, scales: &[f64]) -> Self {
        self.scale_multipliers = scales.to_vec();
        self
    }

    /// Replaces the SPM-size axis (values in KiB).
    pub fn with_spm_kib(mut self, sizes: &[u64]) -> Self {
        self.spm_kib = sizes.iter().map(|&s| Some(s)).collect();
        self
    }

    /// Replaces the filter-size axis.
    pub fn with_filter_entries(mut self, entries: &[usize]) -> Self {
        self.filter_entries = entries.iter().map(|&e| Some(e)).collect();
        self
    }

    /// Replaces the filterDir-size axis.
    pub fn with_filterdir_entries(mut self, entries: &[usize]) -> Self {
        self.filterdir_entries = entries.iter().map(|&e| Some(e)).collect();
        self
    }

    /// Replaces the NoC-model axis (identifiers from [`NOC_MODEL_IDS`]).
    pub fn with_noc_models(mut self, models: &[&str]) -> Self {
        self.noc_models = models.iter().map(|m| Some(m.to_string())).collect();
        self
    }

    /// Replaces the execution-engine axis (identifiers from [`ENGINE_IDS`]).
    pub fn with_engines(mut self, engines: &[&str]) -> Self {
        self.engines = engines.iter().map(|e| Some(e.to_string())).collect();
        self
    }

    /// Replaces the coherence-protocol axis (identifiers from
    /// [`PROTOCOL_IDS`]).
    pub fn with_protocols(mut self, protocols: &[&str]) -> Self {
        self.protocols = protocols.iter().map(|p| Some(p.to_string())).collect();
        self
    }

    /// Lowers every point onto the scaled-down test machine.
    pub fn small(mut self) -> Self {
        self.small_machine = true;
        self
    }

    /// Number of points the cross-product enumerates.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
            * self.machines.len()
            * self.core_counts.len()
            * self.scale_multipliers.len()
            * self.spm_kib.len()
            * self.filter_entries.len()
            * self.filterdir_entries.len()
            * self.noc_models.len()
            * self.engines.len()
            * self.protocols.len()
    }

    /// Returns `true` when the cross-product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cross-product, in a deterministic nested order
    /// (benchmark-major, protocol-minor).
    pub fn points(&self) -> Vec<RunDescriptor> {
        let mut points = Vec::with_capacity(self.len());
        for benchmark in &self.benchmarks {
            for machine in &self.machines {
                for &cores in &self.core_counts {
                    for &scale in &self.scale_multipliers {
                        for &spm in &self.spm_kib {
                            for &filter in &self.filter_entries {
                                for &filterdir in &self.filterdir_entries {
                                    for noc_model in &self.noc_models {
                                        for engine in &self.engines {
                                            for protocol in &self.protocols {
                                                points.push(RunDescriptor {
                                                    benchmark: benchmark.clone(),
                                                    machine: machine.clone(),
                                                    cores,
                                                    scale_multiplier: scale,
                                                    spm_kib: spm,
                                                    filter_entries: filter,
                                                    filterdir_entries: filterdir,
                                                    noc_model: noc_model.clone(),
                                                    engine: engine.clone(),
                                                    protocol: protocol.clone(),
                                                    small_machine: self.small_machine,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_covers_every_combination() {
        let spec = SweepSpec::new(&["CG", "IS"])
            .with_cores(&[8, 16, 32])
            .with_machines(&["cache-only", "hybrid-proposed"])
            .with_scales(&[1.0, 0.5]);
        let points = spec.points();
        assert_eq!(points.len(), spec.len());
        assert_eq!(points.len(), 2 * 2 * 3 * 2);
        assert!(!spec.is_empty());
        // Every combination appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for p in &points {
            assert!(seen.insert(p.fields()), "duplicate point {}", p.label());
        }
    }

    #[test]
    fn defaults_match_the_paper_machine() {
        let spec = SweepSpec::new(&["CG"]);
        assert_eq!(spec.machines.len(), 3);
        assert_eq!(spec.core_counts, vec![64]);
        let p = &spec.points()[0];
        assert_eq!(p.cores, 64);
        assert_eq!(p.spm_kib, None);
        assert!(!p.small_machine);
        assert_eq!(p.scale_multiplier, 1.0);
    }

    #[test]
    fn empty_axis_empties_the_sweep() {
        let spec = SweepSpec::new(&[]);
        assert!(spec.is_empty());
        assert!(spec.points().is_empty());
    }

    #[test]
    fn seed_is_content_derived() {
        let a = RunDescriptor::new("CG", "hybrid-proposed", 16);
        let b = RunDescriptor::new("CG", "hybrid-proposed", 16);
        assert_eq!(a.seed(), b.seed());
        let mut c = a.clone();
        c.scale_multiplier = 0.5;
        assert_ne!(a.seed(), c.seed());
        let mut d = a.clone();
        d.spm_kib = Some(32);
        assert_ne!(a.seed(), d.seed());
    }

    #[test]
    fn noc_models_of_one_point_share_a_seed() {
        // The analytic-vs-measured comparison runs one workload per backend.
        let base = RunDescriptor::new("CG", "hybrid-proposed", 16);
        let mut des = base.clone();
        des.noc_model = Some("discrete-event".into());
        assert_eq!(base.seed(), des.seed());
        // ...but the descriptors remain distinct content.
        assert_ne!(base.fields(), des.fields());
        assert!(des.label().contains("discrete-event"), "{}", des.label());
    }

    #[test]
    fn noc_model_axis_multiplies_the_cross_product() {
        let spec = SweepSpec::new(&["CG"])
            .with_cores(&[8])
            .with_machines(&["hybrid-proposed"])
            .with_noc_models(&NOC_MODEL_IDS);
        assert_eq!(spec.len(), 2);
        let points = spec.points();
        assert_eq!(points[0].noc_model.as_deref(), Some("analytic"));
        assert_eq!(points[1].noc_model.as_deref(), Some("discrete-event"));
    }

    #[test]
    fn engines_of_one_point_share_a_seed() {
        // The ordering-artifact comparison runs one workload per engine.
        let base = RunDescriptor::new("CG", "hybrid-proposed", 16);
        let mut interleaved = base.clone();
        interleaved.engine = Some("interleaved".into());
        assert_eq!(base.seed(), interleaved.seed());
        // ...but the descriptors remain distinct content.
        assert_ne!(base.fields(), interleaved.fields());
        assert!(
            interleaved.label().contains("interleaved"),
            "{}",
            interleaved.label()
        );
    }

    #[test]
    fn engine_axis_multiplies_the_cross_product() {
        let spec = SweepSpec::new(&["CG"])
            .with_cores(&[8])
            .with_machines(&["hybrid-proposed"])
            .with_engines(&ENGINE_IDS);
        assert_eq!(spec.len(), 3);
        let points = spec.points();
        assert_eq!(points[0].engine.as_deref(), Some("legacy"));
        assert_eq!(points[1].engine.as_deref(), Some("interleaved"));
        assert_eq!(points[2].engine.as_deref(), Some("parallel"));
    }

    #[test]
    fn protocols_of_one_point_share_a_seed() {
        // The filterDir-vs-directory comparison runs one workload per
        // backend.
        let base = RunDescriptor::new("CG", "hybrid-proposed", 16);
        let mut directory = base.clone();
        directory.protocol = Some("directory".into());
        assert_eq!(base.seed(), directory.seed());
        // ...but the descriptors remain distinct content.
        assert_ne!(base.fields(), directory.fields());
        assert!(
            directory.label().contains("directory"),
            "{}",
            directory.label()
        );
    }

    #[test]
    fn protocol_axis_multiplies_the_cross_product() {
        let spec = SweepSpec::new(&["CG"])
            .with_cores(&[8])
            .with_machines(&["hybrid-proposed"])
            .with_protocols(&PROTOCOL_IDS);
        assert_eq!(spec.len(), 2);
        let points = spec.points();
        assert_eq!(points[0].protocol.as_deref(), Some("filterdir"));
        assert_eq!(points[1].protocol.as_deref(), Some("directory"));
    }

    #[test]
    fn machines_of_one_point_share_a_seed() {
        // The cross-machine comparison runs one workload on each machine.
        let seeds: Vec<u64> = MACHINE_IDS
            .iter()
            .map(|m| RunDescriptor::new("IS", m, 16).seed())
            .collect();
        assert_eq!(seeds[0], seeds[1]);
        assert_eq!(seeds[1], seeds[2]);
        assert_ne!(
            seeds[0],
            RunDescriptor::new("IS", MACHINE_IDS[0], 32).seed()
        );
    }

    #[test]
    fn labels_mention_overrides() {
        let mut d = RunDescriptor::new("IS", "hybrid-proposed", 8);
        assert_eq!(d.label(), "IS/hybrid-proposed/8c");
        d.scale_multiplier = 0.25;
        d.spm_kib = Some(16);
        d.filter_entries = Some(48);
        d.filterdir_entries = Some(1024);
        let label = d.label();
        for needle in ["x0.25", "spm16K", "flt48", "fdir1024"] {
            assert!(label.contains(needle), "{label} missing {needle}");
        }
    }
}
