//! The campaign orchestrator: cache lookup → parallel execution → store.
//!
//! [`run_campaign`] is generic over the point type and the result type, so
//! the same machinery drives both the declarative [`crate::SweepSpec`]
//! campaigns and the `system` crate's experiment suite / ablation sweeps
//! (which submit their own point tuples).

use crate::cache::ResultCache;
use crate::executor::Executor;
use crate::hash::CacheKey;

/// Version of the cached-blob format.
///
/// Callers fold this into their cache keys (see
/// `system::sweep::run_cache_key`), so bumping it orphans — rather than
/// misinterprets — every blob written by older code.
pub const CACHE_FORMAT: u32 = 6;

/// Encoder/decoder pair turning results into cacheable byte strings.
///
/// Plain function pointers, so a codec is `Copy`, `Sync` and nameable as a
/// constant.  `decode` returning `None` marks the blob unintelligible; the
/// orchestrator treats that as a cache miss and re-executes the point.
#[derive(Debug, Clone, Copy)]
pub struct Codec<R> {
    /// Serializes a result for storage.
    pub encode: fn(&R) -> String,
    /// Parses a stored blob back, or `None` if it is not understood.
    pub decode: fn(&str) -> Option<R>,
}

/// The outcome of a campaign: every result plus cache accounting.
#[derive(Debug, Clone)]
pub struct CampaignReport<R> {
    /// One result per input point, in input order.
    pub results: Vec<R>,
    /// Points that were actually simulated this invocation.
    pub executed: usize,
    /// Points served from the result cache.
    pub cache_hits: usize,
}

impl<R> CampaignReport<R> {
    /// Total number of points (executed + cached).
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// One-line accounting summary, e.g.
    /// `campaign: 6 points, executed 2, cache hits 4`.
    pub fn accounting(&self) -> String {
        format!(
            "campaign: {} points, executed {}, cache hits {}",
            self.total(),
            self.executed,
            self.cache_hits
        )
    }
}

/// Runs `points` through the executor, serving repeats from `cache`.
///
/// * `key_of` derives each point's content-addressed cache key;
/// * `codec` translates results to/from the cached JSON blobs;
/// * `runner` executes one point (it must be a pure, deterministic function
///   of the point for serial and parallel campaigns to be bit-identical).
///
/// With `cache: None` every point executes.  Results always come back in
/// input order.  Cache write failures are reported to stderr but do not
/// fail the campaign (the result is still returned).
pub fn run_campaign<P, R, K, F>(
    executor: &Executor,
    cache: Option<&ResultCache>,
    points: &[P],
    key_of: K,
    codec: &Codec<R>,
    runner: F,
) -> CampaignReport<R>
where
    P: Sync,
    R: Send,
    K: Fn(&P) -> CacheKey,
    F: Fn(&P) -> R + Sync,
{
    let keys: Vec<CacheKey> = points.iter().map(&key_of).collect();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(points.len());
    if let Some(cache) = cache {
        for &key in &keys {
            slots.push(cache.load(key).and_then(|blob| (codec.decode)(&blob)));
        }
    } else {
        slots.resize_with(points.len(), || None);
    }

    let misses: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let executed = executor.run(&misses, |_, &i| runner(&points[i]));

    for (&i, result) in misses.iter().zip(executed) {
        if let Some(cache) = cache {
            if let Err(e) = cache.store(keys[i], &(codec.encode)(&result)) {
                eprintln!(
                    "warning: could not cache point {i} under {}: {e}",
                    cache.path_of(keys[i]).display()
                );
            }
        }
        slots[i] = Some(result);
    }

    let results: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every point is either cached or executed"))
        .collect();
    CampaignReport {
        executed: misses.len(),
        cache_hits: results.len() - misses.len(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn u64_codec() -> Codec<u64> {
        Codec {
            encode: |v| v.to_string(),
            decode: |s| s.parse().ok(),
        }
    }

    fn scratch_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("campaign-run-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    fn key_of(p: &u64) -> CacheKey {
        CacheKey::from_fields([("p", p.to_string())])
    }

    #[test]
    fn uncached_campaign_executes_everything() {
        let points = [1u64, 2, 3];
        let report = run_campaign(
            &Executor::serial(),
            None,
            &points,
            key_of,
            &u64_codec(),
            |&p| p * 10,
        );
        assert_eq!(report.results, vec![10, 20, 30]);
        assert_eq!(report.executed, 3);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.total(), 3);
        assert!(report.accounting().contains("executed 3"));
    }

    #[test]
    fn second_run_is_served_entirely_from_cache() {
        let cache = scratch_cache("second-run");
        let points = [4u64, 5];
        let ran = AtomicUsize::new(0);
        let runner = |&p: &u64| {
            ran.fetch_add(1, Ordering::Relaxed);
            p + 100
        };
        let first = run_campaign(
            &Executor::new(2),
            Some(&cache),
            &points,
            key_of,
            &u64_codec(),
            runner,
        );
        assert_eq!(first.executed, 2);
        assert_eq!(ran.load(Ordering::Relaxed), 2);

        let second = run_campaign(
            &Executor::new(2),
            Some(&cache),
            &points,
            key_of,
            &u64_codec(),
            runner,
        );
        assert_eq!(second.results, first.results);
        assert_eq!(second.executed, 0, "{}", second.accounting());
        assert_eq!(second.cache_hits, 2);
        assert_eq!(ran.load(Ordering::Relaxed), 2, "cache hit re-executed");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn new_points_execute_while_old_ones_hit() {
        let cache = scratch_cache("partial");
        let codec = u64_codec();
        let exec = Executor::serial();
        run_campaign(&exec, Some(&cache), &[7u64], key_of, &codec, |&p| p);
        let report = run_campaign(&exec, Some(&cache), &[7u64, 8], key_of, &codec, |&p| p);
        assert_eq!(report.results, vec![7, 8]);
        assert_eq!(report.executed, 1);
        assert_eq!(report.cache_hits, 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn undecodable_blobs_are_treated_as_misses() {
        let cache = scratch_cache("undecodable");
        let key = key_of(&9);
        cache.store(key, "not a number").unwrap();
        let report = run_campaign(
            &Executor::serial(),
            Some(&cache),
            &[9u64],
            key_of,
            &u64_codec(),
            |&p| p * 2,
        );
        assert_eq!(report.results, vec![18]);
        assert_eq!(report.executed, 1);
        // The re-executed result healed the cache.
        assert_eq!(cache.load(key).as_deref(), Some("18"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
