//! Stable content hashing for the result cache.
//!
//! A [`CacheKey`] identifies one simulation run by the *content* of its
//! inputs: the key is a 64-bit FNV-1a hash over a canonical rendition of
//! `name=value` fields.  Canonicalisation sorts the fields by name before
//! hashing, so the key is independent of the order a caller assembles them
//! in — reordering struct fields (or the code that lists them) can never
//! silently invalidate a cache.

use std::fmt;

/// 64-bit FNV-1a over a byte string.
///
/// Chosen because it is tiny, dependency-free and stable across platforms
/// and Rust versions — unlike `std::hash::DefaultHasher`, whose algorithm is
/// explicitly unspecified and therefore unusable for an on-disk cache.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A content-addressed cache key: the stable hash of a set of named fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Builds a key from `(name, value)` fields.
    ///
    /// The fields are sorted by name (then value) before hashing, so the
    /// resulting key does not depend on the order they are supplied in.
    /// Every field contributes `name=value\n`; names therefore must not
    /// contain `=` or `\n` for the encoding to stay injective (debug builds
    /// assert this).
    pub fn from_fields<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> CacheKey {
        let mut fields: Vec<(&str, String)> = fields.into_iter().collect();
        fields.sort();
        let mut canonical = String::new();
        for (name, value) in &fields {
            debug_assert!(
                !name.contains('=') && !name.contains('\n'),
                "field name {name:?} would break the canonical encoding"
            );
            canonical.push_str(name);
            canonical.push('=');
            canonical.push_str(value);
            canonical.push('\n');
        }
        CacheKey(fnv1a64(canonical.as_bytes()))
    }

    /// The raw 64-bit hash.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The key as a 16-digit lowercase hex string (the cache file stem).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Canonical, bit-exact rendition of an `f64` for hashing.
///
/// `to_string` would collapse `-0.0` into `0.0` and is locale-adjacent
/// territory; the raw bit pattern is unambiguous and stable.
pub fn f64_field(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_is_order_independent() {
        let a = CacheKey::from_fields([("cores", "16".into()), ("bench", "CG".into())]);
        let b = CacheKey::from_fields([("bench", "CG".into()), ("cores", "16".into())]);
        assert_eq!(a, b);
        assert_eq!(a.hex(), b.to_string());
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn key_depends_on_names_and_values() {
        let base = CacheKey::from_fields([("cores", "16".into())]);
        assert_ne!(base, CacheKey::from_fields([("cores", "32".into())]));
        assert_ne!(base, CacheKey::from_fields([("kores", "16".into())]));
        assert_ne!(
            base,
            CacheKey::from_fields([("cores", "16".into()), ("extra", "1".into())])
        );
    }

    #[test]
    fn f64_fields_distinguish_near_identical_values() {
        assert_ne!(f64_field(0.1), f64_field(0.1 + f64::EPSILON));
        assert_ne!(f64_field(0.0), f64_field(-0.0));
        assert_eq!(f64_field(1.5), f64_field(1.5));
    }
}
