//! The content-addressed on-disk result cache.
//!
//! Each cached run is one JSON file named after its [`CacheKey`]
//! (`<dir>/<16-hex-digits>.json`), by default under `target/campaign-cache/`.
//! The cache is deliberately dumb: it stores and returns byte strings; the
//! caller owns the codec (and therefore the decision that a stored blob is
//! still intelligible — a decode failure is simply treated as a miss and the
//! point is re-executed, which makes codec evolution self-healing).
//!
//! Invalidation rules (also documented in the README):
//!
//! * the key hashes the *complete lowered run inputs* — configuration,
//!   benchmark spec, machine kind and a format-version field — so changing
//!   any parameter, or bumping [`crate::run::CACHE_FORMAT`], addresses a
//!   different file;
//! * changing the simulator's *code* is invisible to the key; delete the
//!   cache directory (or pass a fresh `--cache-dir`) after such changes.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::hash::CacheKey;

/// A directory of content-addressed result files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The default cache location, `target/campaign-cache`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/campaign-cache")
    }

    /// A cache at the default location.
    pub fn at_default() -> Self {
        Self::new(Self::default_dir())
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key is stored at.
    pub fn path_of(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads the blob stored under `key`, or `None` on a miss.
    ///
    /// Unreadable files count as misses: the cache never fails a campaign,
    /// it only declines to help.
    pub fn load(&self, key: CacheKey) -> Option<String> {
        fs::read_to_string(self.path_of(key)).ok()
    }

    /// Returns `true` when `key` has a stored blob.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.path_of(key).is_file()
    }

    /// Stores `contents` under `key`, creating the directory if needed.
    ///
    /// The blob is written to a temporary sibling and renamed into place, so
    /// concurrent campaigns sharing a cache never observe a torn file.
    pub fn store(&self, key: CacheKey, contents: &str) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_of(key);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", key.hex(), std::process::id()));
        fs::write(&tmp, contents)?;
        fs::rename(&tmp, &path)
    }

    /// Number of cached entries (unreadable directories count as empty).
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
            .count()
    }

    /// Returns `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deletes every cached entry (the directory itself stays).
    pub fn clear(&self) -> io::Result<()> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|ext| ext == "json") {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("campaign-cache-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    #[test]
    fn store_load_round_trip() {
        let cache = scratch_cache("roundtrip");
        let key = CacheKey::from_fields([("point", "a".into())]);
        assert_eq!(cache.load(key), None);
        assert!(!cache.contains(key));
        assert!(cache.is_empty());

        cache.store(key, "{\"x\": 1}").unwrap();
        assert_eq!(cache.load(key).as_deref(), Some("{\"x\": 1}"));
        assert!(cache.contains(key));
        assert_eq!(cache.len(), 1);
        assert!(cache.path_of(key).ends_with(format!("{}.json", key.hex())));

        // Overwrite wins.
        cache.store(key, "{\"x\": 2}").unwrap();
        assert_eq!(cache.load(key).as_deref(), Some("{\"x\": 2}"));
        assert_eq!(cache.len(), 1);

        cache.clear().unwrap();
        assert!(cache.is_empty());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        let cache = scratch_cache("distinct");
        let a = CacheKey::from_fields([("point", "a".into())]);
        let b = CacheKey::from_fields([("point", "b".into())]);
        cache.store(a, "A").unwrap();
        cache.store(b, "B").unwrap();
        assert_eq!(cache.load(a).as_deref(), Some("A"));
        assert_eq!(cache.load(b).as_deref(), Some("B"));
        assert_eq!(cache.len(), 2);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn clear_on_missing_directory_is_ok() {
        let cache = scratch_cache("missing");
        cache.clear().unwrap();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn default_dir_is_under_target() {
        assert!(ResultCache::default_dir().starts_with("target"));
        assert_eq!(ResultCache::at_default().dir(), ResultCache::default_dir());
    }
}
