//! A work-sharing parallel executor built on `std::thread` scoped threads.
//!
//! The workspace is offline (no rayon), so this is the minimal pool the
//! campaign engine needs: `N` workers pull point indices from a shared
//! atomic counter and send `(index, result)` pairs back over a channel, so
//! results come back **in input order** regardless of which worker computed
//! them or how long each point took.
//!
//! Determinism: the executor imposes no order-dependent state of its own —
//! each item is mapped independently by a pure function of `(index, item)`.
//! As long as the closure is deterministic (every simulation run in this
//! workspace is), `jobs = 1` and `jobs = N` produce bit-identical outputs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// A fixed-width work-sharing executor.
///
/// # Example
///
/// ```
/// use campaign::Executor;
///
/// let squares = Executor::new(4).run(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with `jobs` workers; `0` means the host's available
    /// parallelism (the `--jobs` flag default).
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            jobs
        };
        Executor { jobs }
    }

    /// A single-worker executor (runs everything inline, spawns no threads).
    pub fn serial() -> Self {
        Executor { jobs: 1 }
    }

    /// Number of workers this executor uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, returning the results in input order.
    ///
    /// `f` receives the item index alongside the item.  Workers claim the
    /// next unclaimed index (work sharing), so an expensive point never
    /// blocks the queue behind it.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have stopped.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // A send failure means the receiver is gone (the scope
                    // body panicked); stop quietly, the panic wins.
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            for (i, r) in rx {
                slots[i] = Some(r);
            }
            // A `None` slot means a worker unwound before producing its
            // result; scope join re-raises that panic right after this one.
            slots
                .into_iter()
                .map(|s| s.expect("a worker panicked before finishing its point"))
                .collect()
        })
    }
}

impl Default for Executor {
    /// The available-parallelism executor, same as `Executor::new(0)`.
    fn default() -> Self {
        Executor::new(0)
    }
}

/// The job a [`WorkerPool`] dispatch round shares with its workers: an
/// index-consuming closure and the number of indices to cover.
///
/// The `'static` lifetime is a lie told only inside the pool: `dispatch`
/// erases the caller's borrow and does not return until every worker has
/// quiesced, so the closure is never dereferenced after the true borrow
/// ends.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    items: usize,
}

// The pointer is only ever dereferenced while the originating `dispatch`
// call is blocked, which keeps the underlying closure alive and `Sync`
// makes the shared dereference sound.
unsafe impl Send for Job {}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that a new generation (or shutdown) is available.
    work_ready: Condvar,
    /// Signals the dispatcher that every worker finished the generation.
    done: Condvar,
    /// Next unclaimed index of the current generation.
    next: AtomicUsize,
    /// Set when a worker's closure panicked (the dispatcher re-raises).
    panicked: AtomicBool,
}

struct PoolState {
    generation: u64,
    job: Option<Job>,
    /// Workers still executing the current generation.
    active: usize,
    shutdown: bool,
}

/// A persistent work-sharing pool for fine-grained, repeated dispatches.
///
/// [`Executor::run`] spawns a fresh thread scope per call, which is fine
/// for campaign points that run for seconds but far too slow for the
/// parallel execution engine, which dispatches one round per simulated
/// epoch — thousands of times per kernel.  `WorkerPool` keeps its threads
/// parked on a condvar between rounds so a dispatch costs a lock, a
/// notify and an atomic counter, not a `thread::spawn`.
///
/// Determinism: like [`Executor`], the pool imposes no ordering of its
/// own — workers claim indices from an atomic counter and each index is
/// processed exactly once.  As long as index `i`'s work touches state
/// disjoint from index `j`'s (the parallel engine's per-core lanes), the
/// results are bit-identical for any worker count, including the inline
/// single-worker path.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` total workers; `0` means the host's available
    /// parallelism.  The dispatching thread is one of the workers, so a
    /// one-worker pool spawns no threads and runs every job inline.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            workers
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Total workers (spawned threads plus the dispatching thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn worker_loop(shared: &PoolShared) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut state = shared.state.lock().unwrap();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.generation != seen {
                        seen = state.generation;
                        break state.job.expect("an armed generation carries a job");
                    }
                    state = shared.work_ready.wait(state).unwrap();
                }
            };
            Self::drain(shared, job);
            let mut state = shared.state.lock().unwrap();
            state.active -= 1;
            if state.active == 0 {
                shared.done.notify_all();
            }
        }
    }

    /// Claims and runs indices until the generation's counter runs dry.
    fn drain(shared: &PoolShared, job: Job) {
        // SAFETY: the dispatcher blocks until `active == 0`, so the borrow
        // behind the raw pointer outlives every dereference.
        let f = unsafe { &*job.f };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.items {
                return;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
                return;
            }
        }
    }

    /// Runs `f(0..items)` across the pool, returning when every index has
    /// been processed.  The calling thread participates, so the pool is
    /// fully busy even with short item lists.
    ///
    /// # Panics
    ///
    /// Panics after the round completes if any worker's `f` panicked.
    pub fn dispatch(&self, items: usize, f: &(dyn Fn(usize) + Sync)) {
        if items == 0 {
            return;
        }
        if self.workers <= 1 || items == 1 {
            for i in 0..items {
                f(i);
            }
            return;
        }
        // Erase the borrow's lifetime (see `Job`): sound because this call
        // does not return until every worker has quiesced.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Job {
            f: f as *const _,
            items,
        };
        {
            let mut state = self.shared.state.lock().unwrap();
            self.shared.next.store(0, Ordering::SeqCst);
            state.job = Some(job);
            state.generation = state.generation.wrapping_add(1);
            state.active = self.handles.len();
            self.shared.work_ready.notify_all();
        }
        // The dispatcher is a worker too.
        Self::drain(&self.shared, job);
        let mut state = self.shared.state.lock().unwrap();
        while state.active != 0 {
            state = self.shared.done.wait(state).unwrap();
        }
        state.job = None;
        drop(state);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("a WorkerPool worker panicked during dispatch");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(Executor::new(0).jobs() >= 1);
        assert_eq!(Executor::default().jobs(), Executor::new(0).jobs());
        assert_eq!(Executor::serial().jobs(), 1);
        assert_eq!(Executor::new(7).jobs(), 7);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Reverse the per-item cost so late items finish first.
        let out = Executor::new(8).run(&items, |i, &x| {
            std::thread::sleep(std::time::Duration::from_micros(100 - i as u64));
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..50).collect();
        let f = |i: usize, x: &u64| i as u64 * 1000 + x * x;
        assert_eq!(
            Executor::serial().run(&items, f),
            Executor::new(4).run(&items, f)
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(Executor::new(4).run(&none, |_, &x| x).is_empty());
        assert_eq!(Executor::new(4).run(&[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(2).run(&[1u32, 2, 3, 4], |_, &x| {
                assert_ne!(x, 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_covers_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        for items in [0usize, 1, 3, 100, 1000] {
            let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
            pool.dispatch(items, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{items} items"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.dispatch(7, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * 28);
    }

    #[test]
    fn single_worker_pool_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        assert!(pool.handles.is_empty());
        let seen = Mutex::new(Vec::new());
        pool.dispatch(5, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_zero_means_available_parallelism() {
        assert!(WorkerPool::new(0).workers() >= 1);
    }

    #[test]
    fn pool_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.dispatch(4, &|i| assert_ne!(i, 2, "boom"));
        }));
        assert!(result.is_err());
        // The pool stays usable after a propagated panic.
        let total = AtomicUsize::new(0);
        pool.dispatch(4, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }
}
