//! A work-sharing parallel executor built on `std::thread` scoped threads.
//!
//! The workspace is offline (no rayon), so this is the minimal pool the
//! campaign engine needs: `N` workers pull point indices from a shared
//! atomic counter and send `(index, result)` pairs back over a channel, so
//! results come back **in input order** regardless of which worker computed
//! them or how long each point took.
//!
//! Determinism: the executor imposes no order-dependent state of its own —
//! each item is mapped independently by a pure function of `(index, item)`.
//! As long as the closure is deterministic (every simulation run in this
//! workspace is), `jobs = 1` and `jobs = N` produce bit-identical outputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A fixed-width work-sharing executor.
///
/// # Example
///
/// ```
/// use campaign::Executor;
///
/// let squares = Executor::new(4).run(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with `jobs` workers; `0` means the host's available
    /// parallelism (the `--jobs` flag default).
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            jobs
        };
        Executor { jobs }
    }

    /// A single-worker executor (runs everything inline, spawns no threads).
    pub fn serial() -> Self {
        Executor { jobs: 1 }
    }

    /// Number of workers this executor uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, returning the results in input order.
    ///
    /// `f` receives the item index alongside the item.  Workers claim the
    /// next unclaimed index (work sharing), so an expensive point never
    /// blocks the queue behind it.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have stopped.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // A send failure means the receiver is gone (the scope
                    // body panicked); stop quietly, the panic wins.
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            for (i, r) in rx {
                slots[i] = Some(r);
            }
            // A `None` slot means a worker unwound before producing its
            // result; scope join re-raises that panic right after this one.
            slots
                .into_iter()
                .map(|s| s.expect("a worker panicked before finishing its point"))
                .collect()
        })
    }
}

impl Default for Executor {
    /// The available-parallelism executor, same as `Executor::new(0)`.
    fn default() -> Self {
        Executor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(Executor::new(0).jobs() >= 1);
        assert_eq!(Executor::default().jobs(), Executor::new(0).jobs());
        assert_eq!(Executor::serial().jobs(), 1);
        assert_eq!(Executor::new(7).jobs(), 7);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Reverse the per-item cost so late items finish first.
        let out = Executor::new(8).run(&items, |i, &x| {
            std::thread::sleep(std::time::Duration::from_micros(100 - i as u64));
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..50).collect();
        let f = |i: usize, x: &u64| i as u64 * 1000 + x * x;
        assert_eq!(
            Executor::serial().run(&items, f),
            Executor::new(4).run(&items, f)
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(Executor::new(4).run(&none, |_, &x| x).is_empty());
        assert_eq!(Executor::new(4).run(&[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(2).run(&[1u32, 2, 3, 4], |_, &x| {
                assert_ne!(x, 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
