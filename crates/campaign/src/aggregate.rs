//! Aggregation of campaign results into summary tables and exports.
//!
//! The campaign engine does not depend on the simulator layers, so it
//! aggregates a compact [`PointMetrics`] (extracted from each run by the
//! caller — see `system::sweep::metrics_of`) rather than full run results.
//! From those it derives the paper-style comparisons — hybrid speedup over
//! the cache baseline, protocol overhead over ideal coherence, traffic and
//! energy ratios — per sweep point, plus CSV and JSON exports.

use std::collections::BTreeMap;

use simkernel::{CycleCategory, Json, TableBuilder};

use crate::hash::f64_field;
use crate::spec::RunDescriptor;

/// The headline measurements of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// End-to-end execution time in cycles (the slowest core).
    pub execution_cycles: u64,
    /// Total NoC packets injected.
    pub total_packets: u64,
    /// Total energy in joules.
    pub total_energy_j: f64,
    /// Total instructions executed over all cores.
    pub instructions: u64,
    /// Filter hit ratio, when the proposed protocol ran and used filters.
    pub filter_hit_ratio: Option<f64>,
    /// Machine-wide cycle-accounting totals in [`CycleCategory::ALL`]
    /// order, when the campaign ran dedicated accounted passes
    /// (`--cycle-accounting`).  Like the knob itself, presentation-only.
    pub breakdown: Option<[u64; CycleCategory::COUNT]>,
}

/// One campaign point with its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// The point that was run.
    pub descriptor: RunDescriptor,
    /// What the run measured.
    pub metrics: PointMetrics,
}

/// One row of the cross-machine summary: all machines that ran the same
/// (benchmark, cores, scale, size-overrides) point, compared.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Human-readable point label (benchmark, cores, any overrides).
    pub label: String,
    /// Execution cycles per machine id, for machines present in the sweep.
    pub cycles: BTreeMap<String, u64>,
    /// Hybrid-proposed speedup over the cache-only baseline.
    pub speedup: Option<f64>,
    /// Proposed-protocol execution-time overhead vs ideal coherence
    /// (proposed / ideal).
    pub protocol_overhead: Option<f64>,
    /// Proposed-protocol NoC traffic relative to the cache-only baseline.
    pub traffic_ratio: Option<f64>,
    /// Proposed-protocol energy relative to the cache-only baseline.
    pub energy_ratio: Option<f64>,
}

/// The summary of a whole campaign, one row per non-machine point.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Rows in sweep-enumeration order.
    pub rows: Vec<SummaryRow>,
}

impl CampaignSummary {
    /// Renders the summary as a text table.
    pub fn to_table(&self) -> String {
        let mut t = TableBuilder::new("Campaign summary (hybrid-proposed vs baselines)");
        t.columns(&[
            "Point",
            "Speedup vs cache",
            "Time vs ideal",
            "Traffic vs cache",
            "Energy vs cache",
        ]);
        let fmt = |v: Option<f64>, suffix: &str| {
            v.map_or_else(|| "n/a".to_owned(), |v| format!("{v:.3}{suffix}"))
        };
        for row in &self.rows {
            t.row_owned(vec![
                row.label.clone(),
                fmt(row.speedup, "x"),
                fmt(row.protocol_overhead, "x"),
                fmt(row.traffic_ratio, "x"),
                fmt(row.energy_ratio, "x"),
            ]);
        }
        t.build()
    }

    /// Mean hybrid-proposed speedup over the rows that have one.
    pub fn average_speedup(&self) -> Option<f64> {
        let speedups: Vec<f64> = self.rows.iter().filter_map(|r| r.speedup).collect();
        if speedups.is_empty() {
            None
        } else {
            Some(speedups.iter().sum::<f64>() / speedups.len() as f64)
        }
    }
}

/// Groups records that differ only in machine kind and compares the
/// machines within each group.
pub fn summarize(records: &[PointRecord]) -> CampaignSummary {
    // Group key: every descriptor field except the machine.
    let group_key = |d: &RunDescriptor| -> String {
        let mut key = String::new();
        for (name, value) in d.fields() {
            if name != "machine" {
                key.push_str(name);
                key.push('=');
                key.push_str(&value);
                key.push('\n');
            }
        }
        key
    };

    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Vec<&PointRecord>> = BTreeMap::new();
    for record in records {
        let key = group_key(&record.descriptor);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(record);
    }

    let rows = order
        .into_iter()
        .map(|key| {
            let members = &groups[&key];
            let mut label_descriptor = members[0].descriptor.clone();
            label_descriptor.machine = "*".into();
            let by_machine: BTreeMap<&str, PointMetrics> = members
                .iter()
                .map(|r| (r.descriptor.machine.as_str(), r.metrics))
                .collect();
            let cache = by_machine.get("cache-only");
            let ideal = by_machine.get("hybrid-ideal");
            let proposed = by_machine.get("hybrid-proposed");
            let ratio = |num: f64, den: f64| (den > 0.0).then(|| num / den);
            SummaryRow {
                label: label_descriptor.label().replace("/*", "").replace("*/", ""),
                cycles: members
                    .iter()
                    .map(|r| (r.descriptor.machine.clone(), r.metrics.execution_cycles))
                    .collect(),
                speedup: cache
                    .zip(proposed)
                    .and_then(|(c, p)| ratio(c.execution_cycles as f64, p.execution_cycles as f64)),
                protocol_overhead: proposed
                    .zip(ideal)
                    .and_then(|(p, i)| ratio(p.execution_cycles as f64, i.execution_cycles as f64)),
                traffic_ratio: proposed
                    .zip(cache)
                    .and_then(|(p, c)| ratio(p.total_packets as f64, c.total_packets as f64)),
                energy_ratio: proposed
                    .zip(cache)
                    .and_then(|(p, c)| ratio(p.total_energy_j, c.total_energy_j)),
            }
        })
        .collect();
    CampaignSummary { rows }
}

/// The CSV column order used by [`to_csv`].
///
/// The nine `cycles_*` columns come strictly **after** every other column
/// (consumers that slice the leading descriptor+metric columns keep
/// working); they render empty unless the campaign ran accounted passes.  A
/// test pins their names to [`CycleCategory::ALL`].
pub const CSV_COLUMNS: [&str; 25] = [
    "benchmark",
    "machine",
    "cores",
    "scale_multiplier",
    "spm_kib",
    "filter_entries",
    "filterdir_entries",
    "noc_model",
    "engine",
    "protocol",
    "small_machine",
    "execution_cycles",
    "total_packets",
    "total_energy_j",
    "instructions",
    "filter_hit_ratio",
    "cycles_compute",
    "cycles_ifetch",
    "cycles_lsq_stall",
    "cycles_miss_wait",
    "cycles_dma_wait",
    "cycles_barrier_wait",
    "cycles_noc_queue",
    "cycles_protocol",
    "cycles_park",
];

/// Exports every record as CSV, one row per point, header included.
pub fn to_csv(records: &[PointRecord]) -> String {
    fn opt<T: ToString>(v: &Option<T>) -> String {
        v.as_ref().map_or_else(String::new, T::to_string)
    }
    let mut out = CSV_COLUMNS.join(",");
    out.push('\n');
    for r in records {
        let d = &r.descriptor;
        let m = &r.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            d.benchmark,
            d.machine,
            d.cores,
            d.scale_multiplier,
            opt(&d.spm_kib),
            opt(&d.filter_entries),
            opt(&d.filterdir_entries),
            opt(&d.noc_model),
            opt(&d.engine),
            opt(&d.protocol),
            d.small_machine,
            m.execution_cycles,
            m.total_packets,
            m.total_energy_j,
            m.instructions,
            opt(&m.filter_hit_ratio),
        ));
        for i in 0..CycleCategory::COUNT {
            out.push(',');
            if let Some(breakdown) = &m.breakdown {
                out.push_str(&breakdown[i].to_string());
            }
        }
        out.push('\n');
    }
    out
}

/// Exports every record as a JSON array of `{descriptor, metrics}` objects.
///
/// The descriptor's scale multiplier is emitted twice: human-readable
/// (`scale_multiplier`) and bit-exact (`scale_multiplier_bits`), so the
/// export can reconstruct descriptors without floating-point drift.
pub fn to_json(records: &[PointRecord]) -> String {
    let array: Vec<Json> = records
        .iter()
        .map(|r| {
            let d = &r.descriptor;
            let m = &r.metrics;
            fn opt_num<T: Copy + Into<u64>>(v: Option<T>) -> Json {
                v.map_or(Json::Null, |v| Json::from(v.into()))
            }
            Json::obj([
                (
                    "descriptor",
                    Json::obj([
                        ("benchmark", Json::str(&d.benchmark)),
                        ("machine", Json::str(&d.machine)),
                        ("cores", Json::from(d.cores as u64)),
                        ("scale_multiplier", Json::from(d.scale_multiplier)),
                        (
                            "scale_multiplier_bits",
                            Json::str(f64_field(d.scale_multiplier)),
                        ),
                        ("spm_kib", opt_num(d.spm_kib)),
                        (
                            "filter_entries",
                            opt_num(d.filter_entries.map(|v| v as u64)),
                        ),
                        (
                            "filterdir_entries",
                            opt_num(d.filterdir_entries.map(|v| v as u64)),
                        ),
                        (
                            "noc_model",
                            d.noc_model.as_deref().map_or(Json::Null, Json::str),
                        ),
                        ("engine", d.engine.as_deref().map_or(Json::Null, Json::str)),
                        (
                            "protocol",
                            d.protocol.as_deref().map_or(Json::Null, Json::str),
                        ),
                        ("small_machine", Json::Bool(d.small_machine)),
                    ]),
                ),
                (
                    "metrics",
                    Json::obj([
                        ("execution_cycles", Json::from(m.execution_cycles)),
                        ("total_packets", Json::from(m.total_packets)),
                        ("total_energy_j", Json::from(m.total_energy_j)),
                        ("instructions", Json::from(m.instructions)),
                        ("filter_hit_ratio", Json::from(m.filter_hit_ratio)),
                        (
                            "breakdown",
                            m.breakdown.map_or(Json::Null, |counts| {
                                Json::obj(
                                    CycleCategory::ALL
                                        .iter()
                                        .zip(counts)
                                        .map(|(category, count)| (category.id(), Json::from(count)))
                                        .collect::<Vec<_>>(),
                                )
                            }),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    Json::Arr(array).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(machine: &str, cycles: u64, packets: u64, energy: f64) -> PointRecord {
        PointRecord {
            descriptor: RunDescriptor::new("CG", machine, 16),
            metrics: PointMetrics {
                execution_cycles: cycles,
                total_packets: packets,
                total_energy_j: energy,
                instructions: 1000,
                filter_hit_ratio: (machine == "hybrid-proposed").then_some(0.97),
                breakdown: None,
            },
        }
    }

    fn three_machines() -> Vec<PointRecord> {
        vec![
            record("cache-only", 1200, 900, 3.0),
            record("hybrid-ideal", 950, 600, 2.4),
            record("hybrid-proposed", 1000, 650, 2.5),
        ]
    }

    #[test]
    fn summary_compares_machines_within_a_point() {
        let summary = summarize(&three_machines());
        assert_eq!(summary.rows.len(), 1);
        let row = &summary.rows[0];
        assert_eq!(row.label, "CG/16c");
        assert_eq!(row.cycles.len(), 3);
        assert!((row.speedup.unwrap() - 1.2).abs() < 1e-12);
        assert!((row.protocol_overhead.unwrap() - 1000.0 / 950.0).abs() < 1e-12);
        assert!((row.traffic_ratio.unwrap() - 650.0 / 900.0).abs() < 1e-12);
        assert!((row.energy_ratio.unwrap() - 2.5 / 3.0).abs() < 1e-12);
        assert!((summary.average_speedup().unwrap() - 1.2).abs() < 1e-12);
        let table = summary.to_table();
        assert!(table.contains("CG/16c"));
        assert!(table.contains("1.200x"));
    }

    #[test]
    fn missing_machines_leave_holes_not_garbage() {
        let summary = summarize(&[record("hybrid-proposed", 1000, 650, 2.5)]);
        let row = &summary.rows[0];
        assert_eq!(row.speedup, None);
        assert_eq!(row.protocol_overhead, None);
        assert_eq!(summary.average_speedup(), None);
        assert!(summary.to_table().contains("n/a"));
    }

    #[test]
    fn groups_split_on_every_non_machine_axis() {
        let mut records = three_machines();
        let mut bigger = record("cache-only", 5000, 2000, 9.0);
        bigger.descriptor.cores = 64;
        records.push(bigger);
        let summary = summarize(&records);
        assert_eq!(summary.rows.len(), 2);
        // The 64-core group only has the cache machine: no ratios.
        let lone = summary
            .rows
            .iter()
            .find(|r| r.label.contains("64c"))
            .unwrap();
        assert_eq!(lone.speedup, None);
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let csv = to_csv(&three_machines());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], CSV_COLUMNS.join(","));
        assert!(lines[1].starts_with("CG,cache-only,16,1,"));
        // Optional fields render empty, not "None".
        assert!(!csv.contains("None"));
        assert!(lines[3].contains("0.97"));
        // Every row has every column; unaccounted breakdowns are blank.
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), CSV_COLUMNS.len() - 1);
            assert!(line.ends_with(",,,,,,,,"), "{line}");
        }
    }

    #[test]
    fn csv_breakdown_columns_mirror_the_category_order() {
        // The appended column names are the category ids, in ALL order, so
        // the campaign CSV and the `cycle_report --csv` export agree.
        for (column, category) in CSV_COLUMNS[16..].iter().zip(CycleCategory::ALL) {
            assert_eq!(*column, format!("cycles_{}", category.id()));
        }
        let mut records = three_machines();
        records[0].metrics.breakdown = Some(std::array::from_fn(|i| 100 + i as u64));
        let csv = to_csv(&records);
        let accounted: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(
            accounted[16..],
            ["100", "101", "102", "103", "104", "105", "106", "107", "108"]
        );
    }

    #[test]
    fn json_export_parses_back() {
        let text = to_json(&three_machines());
        let parsed = Json::parse(&text).unwrap();
        let array = parsed.as_array().unwrap();
        assert_eq!(array.len(), 3);
        let first = &array[0];
        assert_eq!(
            first.get("descriptor").unwrap().get("benchmark").unwrap(),
            &Json::str("CG")
        );
        assert_eq!(
            first
                .get("metrics")
                .unwrap()
                .get("execution_cycles")
                .unwrap()
                .as_u64(),
            Some(1200)
        );
        assert!(first
            .get("metrics")
            .unwrap()
            .get("filter_hit_ratio")
            .unwrap()
            .is_null());
        assert!(first
            .get("metrics")
            .unwrap()
            .get("breakdown")
            .unwrap()
            .is_null());
    }

    #[test]
    fn json_export_carries_breakdowns_by_category_id() {
        let mut records = three_machines();
        records[2].metrics.breakdown = Some(std::array::from_fn(|i| 10 * i as u64));
        let parsed = Json::parse(&to_json(&records)).unwrap();
        let breakdown = parsed.as_array().unwrap()[2]
            .get("metrics")
            .unwrap()
            .get("breakdown")
            .unwrap()
            .clone();
        assert_eq!(breakdown.get("compute").unwrap().as_u64(), Some(0));
        assert_eq!(breakdown.get("noc_queue").unwrap().as_u64(), Some(60));
        assert_eq!(breakdown.get("park").unwrap().as_u64(), Some(80));
    }
}
