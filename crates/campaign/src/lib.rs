//! Simulation-campaign engine: declarative parameter sweeps, a parallel
//! work-sharing executor and a content-addressed result cache.
//!
//! The paper's evaluation is a parameter-space study (six NAS kernels ×
//! three machine kinds, plus filter/SPM/intensity ablations), and the
//! natural follow-on experiments — sweeping core counts or directory
//! geometries à la Rainbow (Menezo et al.) — multiply the point count
//! further.  This crate turns "run every point, again, on one core" into a
//! campaign:
//!
//! * [`SweepSpec`] declares the axes and enumerates their cross-product as
//!   [`RunDescriptor`]s — plain-data run recipes with deterministic,
//!   content-derived seeds;
//! * [`Executor`] shards points across `N` `std::thread` workers (the
//!   workspace is offline, so no rayon) while keeping results in input
//!   order — serial and parallel campaigns are bit-identical;
//! * [`ResultCache`] stores each result as JSON under a [`CacheKey`] — the
//!   stable FNV-1a hash of the run's complete inputs — so re-running a
//!   campaign only executes new or changed points;
//! * [`run_campaign`] glues the three together and reports how many points
//!   executed vs. hit the cache;
//! * [`aggregate`] folds the per-point metrics into paper-style summary
//!   tables and CSV/JSON exports.
//!
//! The crate sits *below* the `system` crate on purpose: descriptors are
//! lowered to concrete machine configurations by `system::sweep`, which
//! lets the experiment suite and the report binaries submit their runs
//! through the same executor and cache (`--jobs`, `--cache-dir`).
//!
//! # Example
//!
//! ```
//! use campaign::{run_campaign, Codec, Executor, SweepSpec};
//!
//! let points = SweepSpec::new(&["CG", "IS"]).with_cores(&[8, 16]).points();
//! assert_eq!(points.len(), 2 * 3 * 2);
//!
//! // A toy runner; the real one is `system::sweep::execute_descriptor`.
//! let codec = Codec { encode: |v: &usize| v.to_string(), decode: |s| s.parse().ok() };
//! let report = run_campaign(
//!     &Executor::new(4),
//!     None, // no cache in a doctest
//!     &points,
//!     |p| p.cache_key_fields(),
//!     &codec,
//!     |p| p.benchmark.len() * p.cores,
//! );
//! assert_eq!(report.results.len(), points.len());
//! assert_eq!(report.executed, points.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod cache;
pub mod executor;
pub mod hash;
pub mod run;
pub mod spec;

pub use aggregate::{summarize, CampaignSummary, PointMetrics, PointRecord, SummaryRow};
pub use cache::ResultCache;
pub use executor::{Executor, WorkerPool};
pub use hash::{fnv1a64, CacheKey};
pub use run::{run_campaign, CampaignReport, Codec, CACHE_FORMAT};
pub use spec::{RunDescriptor, SweepSpec, ENGINE_IDS, MACHINE_IDS, NOC_MODEL_IDS, PROTOCOL_IDS};

impl RunDescriptor {
    /// The descriptor's own content-addressed key.
    ///
    /// This keys the *descriptor*; the `system` lowering layer keys the
    /// fully lowered run inputs instead (config + spec + machine), which
    /// also covers parameters a descriptor cannot express.  Use this one
    /// when the descriptor is the whole truth (as in the doctest above).
    pub fn cache_key_fields(&self) -> CacheKey {
        CacheKey::from_fields(self.fields())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_cache_key_tracks_content() {
        let a = RunDescriptor::new("CG", "hybrid-proposed", 8);
        let b = RunDescriptor::new("CG", "hybrid-proposed", 8);
        assert_eq!(a.cache_key_fields(), b.cache_key_fields());
        let c = RunDescriptor::new("CG", "hybrid-ideal", 8);
        assert_ne!(a.cache_key_fields(), c.cache_key_fields());
    }
}
