//! Scratchpad memories, DMA controllers and the SPM address-space mapping of
//! the hybrid memory system.
//!
//! Section 2.1 of the paper extends every core with a 32 KB scratchpad (SPM)
//! and a DMA controller (DMAC).  The pieces modelled here are:
//!
//! * [`SpmAddressMap`] — the reserved virtual/physical address ranges for the
//!   SPMs and the per-core registers used to range-check every memory
//!   instruction and bypass the MMU for SPM accesses (paper Figure 2);
//! * [`Scratchpad`] — the storage itself: fixed 2-cycle latency, divided by
//!   the runtime library into equally-sized buffers before each loop;
//! * [`Dmac`] — the DMA controller with its in-order command queue, issuing
//!   `dma-get` / `dma-put` bus requests that are integrated with the cache
//!   coherence protocol of the global memory (via
//!   [`mem::MemorySystem::dma_get_line`] / [`mem::MemorySystem::dma_put_line`]),
//!   plus `dma-synch` completion tracking.
//!
//! # Example
//!
//! ```
//! use spm::{Dmac, DmacConfig, Scratchpad, SpmAddressMap, SpmConfig};
//! use mem::{AddressRange, Addr, MemorySystem, MemorySystemConfig};
//! use simkernel::{CoreId, Cycle};
//!
//! let map = SpmAddressMap::new(4, SpmConfig::isca2015().size);
//! let mut memsys = MemorySystem::new(MemorySystemConfig::small(4));
//! let mut dmac = Dmac::new(CoreId::new(0), DmacConfig::isca2015());
//!
//! // Stage 1 KiB of global memory into the local SPM.
//! let range = AddressRange::new(Addr::new(0x10_0000), 1024);
//! dmac.dma_get(1, range, Cycle::ZERO, &mut memsys, None);
//! let done = dmac.dma_synch(&[1], Cycle::ZERO);
//! assert!(done > Cycle::ZERO);
//! let _ = (map, Scratchpad::new(SpmConfig::isca2015()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addrmap;
pub mod dmac;
pub mod scratchpad;

pub use addrmap::SpmAddressMap;
pub use dmac::{DmaTag, Dmac, DmacConfig};
pub use scratchpad::{BufferId, Scratchpad, SpmConfig};
