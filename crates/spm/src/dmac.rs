//! The per-core DMA controller.
//!
//! Each DMAC exposes three operations to the runtime library (§2.1 of the
//! paper): `dma-get` (global memory → SPM), `dma-put` (SPM → global memory)
//! and `dma-synch` (wait for tagged transfers to complete).  The bus requests
//! of a transfer are integrated with the cache coherence protocol of the
//! global memory: a `dma-get` snoops the caches for the freshest copy, a
//! `dma-put` updates memory and invalidates cached copies.  Both behaviours
//! are implemented by [`mem::MemorySystem::dma_get_line`] /
//! [`mem::MemorySystem::dma_put_line`]; the DMAC adds the command-queue and
//! issue-bandwidth timing on top.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use simkernel::{CoreId, Cycle, StatRegistry};

use mem::{AddressRange, MemorySystem, ValueStore};

/// Tag used by the runtime library to name a transfer for `dma-synch`.
pub type DmaTag = u32;

/// Configuration of one DMA controller (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmacConfig {
    /// Entries of the in-order DMA command queue.
    pub command_queue_entries: usize,
    /// Entries of the in-order bus request queue.
    pub bus_request_queue_entries: usize,
    /// Minimum gap between consecutive line requests issued to the bus.
    pub issue_gap: Cycle,
    /// Fixed cost of accepting and decoding one DMA command.
    pub command_overhead: Cycle,
}

impl DmacConfig {
    /// The paper's configuration: 32 command-queue entries, 512 bus-request
    /// queue entries, both in order.
    pub fn isca2015() -> Self {
        DmacConfig {
            command_queue_entries: 32,
            bus_request_queue_entries: 512,
            issue_gap: Cycle::new(1),
            command_overhead: Cycle::new(16),
        }
    }
}

impl Default for DmacConfig {
    fn default() -> Self {
        Self::isca2015()
    }
}

/// Direction of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmaDirection {
    /// Global memory → SPM (`dma-get`).
    Get,
    /// SPM → global memory (`dma-put`).
    Put,
}

/// The per-core DMA controller.
///
/// See the crate-level example for typical usage.
#[derive(Debug)]
pub struct Dmac {
    core: CoreId,
    config: DmacConfig,
    /// When the engine is next free to start issuing line requests.
    next_issue: Cycle,
    /// Completion time of each outstanding tagged transfer.
    pending: HashMap<DmaTag, Cycle>,
    commands: u64,
    gets: u64,
    puts: u64,
    lines_transferred: u64,
    bytes_transferred: u64,
    queue_full_stalls: u64,
    queue_occupancy_max: u64,
    /// `dma-synch` calls that found at least one transfer still in flight.
    ///
    /// Cycle-accounting aid: together with `synch_wait_cycles` it describes
    /// the in-flight windows the core actually waited out (what the
    /// `DmaWait` category of [`simkernel::attrib`] charges).  Not exported
    /// under `dmac.*` so the golden stat reports stay byte-identical.
    synch_waits: u64,
    /// Total cycles `dma_synch` returned beyond `now` (waited windows).
    synch_wait_cycles: u64,
}

impl Dmac {
    /// Creates the DMAC attached to `core`.
    pub fn new(core: CoreId, config: DmacConfig) -> Self {
        Dmac {
            core,
            config,
            next_issue: Cycle::ZERO,
            pending: HashMap::new(),
            commands: 0,
            gets: 0,
            puts: 0,
            lines_transferred: 0,
            bytes_transferred: 0,
            queue_full_stalls: 0,
            queue_occupancy_max: 0,
            synch_waits: 0,
            synch_wait_cycles: 0,
        }
    }

    /// The core this DMAC belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The configuration in use.
    pub fn config(&self) -> &DmacConfig {
        &self.config
    }

    /// Issues a `dma-get`: copies `range` of global memory into the SPM.
    ///
    /// Returns the cycle at which the transfer completes.  The transfer is
    /// also remembered under `tag` until a matching [`Dmac::dma_synch`].
    ///
    /// When the memory system tracks values and `spm_values` is given (the
    /// SPM's functional contents, keyed by global-memory address), the
    /// transferred words are copied into it from wherever the bus request
    /// read them — a dirty cache, the L2, or memory.
    pub fn dma_get(
        &mut self,
        tag: DmaTag,
        range: AddressRange,
        now: Cycle,
        memsys: &mut MemorySystem,
        spm_values: Option<&mut ValueStore>,
    ) -> Cycle {
        self.gets += 1;
        self.transfer(tag, range, DmaDirection::Get, now, memsys, spm_values)
    }

    /// Issues a `dma-put`: copies `range` (as staged in the SPM) back to
    /// global memory, invalidating stale cached copies.
    ///
    /// Returns the cycle at which the transfer completes.  With value
    /// tracking, the staged words of `range` present in `spm_values` are
    /// written back to memory.
    pub fn dma_put(
        &mut self,
        tag: DmaTag,
        range: AddressRange,
        now: Cycle,
        memsys: &mut MemorySystem,
        spm_values: Option<&mut ValueStore>,
    ) -> Cycle {
        self.puts += 1;
        self.transfer(tag, range, DmaDirection::Put, now, memsys, spm_values)
    }

    fn transfer(
        &mut self,
        tag: DmaTag,
        range: AddressRange,
        direction: DmaDirection,
        now: Cycle,
        memsys: &mut MemorySystem,
        mut spm_values: Option<&mut ValueStore>,
    ) -> Cycle {
        self.commands += 1;
        if self.pending.len() >= self.config.command_queue_entries {
            // The in-order command queue is full: the new command has to wait
            // for the oldest outstanding transfer to drain.
            self.queue_full_stalls += 1;
            if let Some(&oldest) = self.pending.values().min() {
                self.next_issue = self.next_issue.max(oldest);
            }
        }

        let start = now.max(self.next_issue) + self.config.command_overhead;
        let mut issue = start;
        let mut completion = start;
        for line in range.lines() {
            let latency = match direction {
                DmaDirection::Get => {
                    let (latency, values) = memsys.dma_get_line_valued(self.core, line);
                    if let (Some(store), Some(values)) = (spm_values.as_deref_mut(), values) {
                        // Only the words inside the chunk are staged: a
                        // partial first/last line must not clobber the
                        // neighbouring data's slots.
                        store.fill_line_masked(line, &values, &range);
                    }
                    latency
                }
                DmaDirection::Put => {
                    let words = spm_values.as_deref().map(|s| s.masked_line(line, &range));
                    memsys.dma_put_line_valued(self.core, line, words.as_ref())
                }
            };
            completion = completion.max(issue + latency);
            issue += self.config.issue_gap;
            self.lines_transferred += 1;
        }
        self.bytes_transferred += range.len();
        // The engine can accept the next command once it has issued every
        // line request of this one.
        self.next_issue = issue;

        let entry = self.pending.entry(tag).or_insert(Cycle::ZERO);
        *entry = (*entry).max(completion);
        self.queue_occupancy_max = self.queue_occupancy_max.max(self.pending.len() as u64);
        completion
    }

    /// Implements `dma-synch`: blocks until every transfer tagged with one of
    /// `tags` has completed.
    ///
    /// Returns the cycle at which the waiting thread may resume (at least
    /// `now`).  Synced tags are forgotten.
    pub fn dma_synch(&mut self, tags: &[DmaTag], now: Cycle) -> Cycle {
        let mut done = now;
        for tag in tags {
            if let Some(completion) = self.pending.remove(tag) {
                done = done.max(completion);
            }
        }
        if done > now {
            self.synch_waits += 1;
            self.synch_wait_cycles += (done - now).as_u64();
        }
        done
    }

    /// Completion time of every outstanding transfer (used at kernel barriers).
    pub fn drain_all(&mut self, now: Cycle) -> Cycle {
        let mut done = now;
        for (_, completion) in self.pending.drain() {
            done = done.max(completion);
        }
        done
    }

    /// Number of transfers still outstanding.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Number of tagged transfers still in flight at `at` — the mid-run
    /// queue-depth gauge the trace sampler reads, as opposed to
    /// [`Dmac::outstanding`] (which also counts completed-but-unsynced
    /// transfers waiting for their `dma-synch`).
    pub fn in_flight_at(&self, at: Cycle) -> usize {
        self.pending.values().filter(|&&done| done > at).count()
    }

    /// Total DMA commands processed.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Total lines transferred in either direction.
    pub fn lines_transferred(&self) -> u64 {
        self.lines_transferred
    }

    /// Total bytes transferred in either direction.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Number of commands that found the command queue full.
    pub fn queue_full_stalls(&self) -> u64 {
        self.queue_full_stalls
    }

    /// High-water mark of simultaneously outstanding tagged transfers.
    ///
    /// `queue_full_stalls` only fires once the command queue overflows;
    /// this mark shows how close a workload actually gets, so
    /// [`DmacConfig::command_queue_entries`] can be validated (and trimmed)
    /// against real occupancy instead of guessed.
    pub fn queue_occupancy_max(&self) -> u64 {
        self.queue_occupancy_max
    }

    /// `dma-synch` calls that actually waited on an in-flight transfer.
    pub fn synch_waits(&self) -> u64 {
        self.synch_waits
    }

    /// Total cycles those waits lasted (the `DmaWait` windows at this DMAC).
    pub fn synch_wait_cycles(&self) -> u64 {
        self.synch_wait_cycles
    }

    /// Exports the DMAC counters under `dmac.*` names.
    pub fn export_stats(&self, stats: &mut StatRegistry) {
        stats.add_count("dmac.commands", self.commands);
        stats.add_count("dmac.gets", self.gets);
        stats.add_count("dmac.puts", self.puts);
        stats.add_count("dmac.lines", self.lines_transferred);
        stats.add_count("dmac.bytes", self.bytes_transferred);
        stats.add_count("dmac.queue_full_stalls", self.queue_full_stalls);
        // Max-merged: with one DMAC per core the registry keeps the chip-wide
        // peak, not the sum of per-core peaks.
        stats.record_max("dmac.queue_occupancy_max", self.queue_occupancy_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::{Addr, MemorySystemConfig};
    use noc::MessageClass;

    fn memsys() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::small(4))
    }

    fn dmac() -> Dmac {
        Dmac::new(CoreId::new(0), DmacConfig::isca2015())
    }

    #[test]
    fn get_transfers_all_lines() {
        let mut m = memsys();
        let mut d = dmac();
        let range = AddressRange::new(Addr::new(0x10_0000), 1024);
        let done = d.dma_get(1, range, Cycle::ZERO, &mut m, None);
        assert!(done > Cycle::ZERO);
        assert_eq!(d.lines_transferred(), 16);
        assert_eq!(d.bytes_transferred(), 1024);
        assert_eq!(m.counters().dma_line_reads, 16);
        assert!(m.noc().traffic().packets(MessageClass::Dma) > 0);
    }

    #[test]
    fn synch_wait_windows_are_counted() {
        let mut m = memsys();
        let mut d = dmac();
        let range = AddressRange::new(Addr::new(0x30_0000), 1024);
        let completion = d.dma_get(7, range, Cycle::ZERO, &mut m, None);
        // Synching while the transfer is in flight waits the whole window...
        let done = d.dma_synch(&[7], Cycle::ZERO);
        assert_eq!(done, completion);
        assert_eq!(d.synch_waits(), 1);
        assert_eq!(d.synch_wait_cycles(), completion.as_u64());
        // ...and a synch on a forgotten/complete tag waits nothing.
        let later = d.dma_synch(&[7], completion);
        assert_eq!(later, completion);
        assert_eq!(d.synch_waits(), 1);
        assert_eq!(d.synch_wait_cycles(), completion.as_u64());
    }

    #[test]
    fn put_invalidates_and_completes() {
        let mut m = memsys();
        let mut d = dmac();
        // Warm a line into core 1's cache, then dma-put over it.
        let addr = Addr::new(0x20_0000);
        let _ = m.access(
            CoreId::new(1),
            addr,
            mem::AccessKind::Load,
            MessageClass::Read,
            1,
        );
        assert!(m.is_cached(addr.line()));
        let range = AddressRange::new(addr, 64);
        let done = d.dma_put(2, range, Cycle::new(100), &mut m, None);
        assert!(done > Cycle::new(100));
        assert!(!m.is_cached(addr.line()));
        assert_eq!(d.commands(), 1);
    }

    #[test]
    fn synch_waits_for_tagged_transfers() {
        let mut m = memsys();
        let mut d = dmac();
        let r1 = AddressRange::new(Addr::new(0x30_0000), 512);
        let r2 = AddressRange::new(Addr::new(0x40_0000), 512);
        let c1 = d.dma_get(1, r1, Cycle::ZERO, &mut m, None);
        let c2 = d.dma_get(2, r2, Cycle::ZERO, &mut m, None);
        assert_eq!(d.outstanding(), 2);
        let done = d.dma_synch(&[1], Cycle::ZERO);
        assert_eq!(done, c1);
        assert_eq!(d.outstanding(), 1);
        // Syncing an unknown tag is a no-op returning `now`.
        assert_eq!(d.dma_synch(&[99], Cycle::new(5)), Cycle::new(5));
        let done_all = d.drain_all(Cycle::ZERO);
        assert_eq!(done_all, c2.max(c1));
        assert_eq!(d.outstanding(), 0);
    }

    #[test]
    fn back_to_back_commands_serialize_on_the_engine() {
        let mut m = memsys();
        let mut d = dmac();
        let r = AddressRange::new(Addr::new(0x50_0000), 2048);
        let c1 = d.dma_get(1, r, Cycle::ZERO, &mut m, None);
        let r2 = AddressRange::new(Addr::new(0x60_0000), 2048);
        let c2 = d.dma_get(2, r2, Cycle::ZERO, &mut m, None);
        assert!(c2 > c1, "second command must finish after the first");
    }

    #[test]
    fn same_tag_accumulates_latest_completion() {
        let mut m = memsys();
        let mut d = dmac();
        let c1 = d.dma_get(
            7,
            AddressRange::new(Addr::new(0x1000), 64),
            Cycle::ZERO,
            &mut m,
            None,
        );
        let c2 = d.dma_get(
            7,
            AddressRange::new(Addr::new(0x2000), 64),
            Cycle::ZERO,
            &mut m,
            None,
        );
        let done = d.dma_synch(&[7], Cycle::ZERO);
        assert_eq!(done, c1.max(c2));
    }

    #[test]
    fn in_flight_snapshot_distinguishes_done_from_moving() {
        let mut m = memsys();
        let mut d = dmac();
        let c1 = d.dma_get(
            1,
            AddressRange::new(Addr::new(0x1000), 512),
            Cycle::ZERO,
            &mut m,
            None,
        );
        let c2 = d.dma_get(
            2,
            AddressRange::new(Addr::new(0x2000), 2048),
            Cycle::ZERO,
            &mut m,
            None,
        );
        assert!(c2 > c1);
        assert_eq!(d.in_flight_at(Cycle::ZERO), 2);
        // After the first completes but before the second, one is moving —
        // even though both are still outstanding (unsynced).
        assert_eq!(d.in_flight_at(c1), 1);
        assert_eq!(d.outstanding(), 2);
        assert_eq!(d.in_flight_at(c2), 0);
    }

    #[test]
    fn command_queue_pressure_is_counted() {
        let mut m = memsys();
        let mut d = Dmac::new(
            CoreId::new(0),
            DmacConfig {
                command_queue_entries: 2,
                ..DmacConfig::isca2015()
            },
        );
        for tag in 0..4 {
            let _ = d.dma_get(
                tag,
                AddressRange::new(Addr::new(0x1000 * (tag as u64 + 1)), 256),
                Cycle::ZERO,
                &mut m,
                None,
            );
        }
        assert!(d.queue_full_stalls() > 0);
    }

    #[test]
    fn get_then_put_round_trips_values_through_the_spm() {
        let mut m = memsys();
        m.enable_value_tracking();
        let mut d = dmac();
        let addr = Addr::new(0x70_0000);
        // Core 2 dirties the line in its cache; the get must snoop it.
        let _ = m.access(
            CoreId::new(2),
            addr,
            mem::AccessKind::Store,
            MessageClass::Write,
            1,
        );
        m.write_word(CoreId::new(2), addr, 1234);
        let mut spm = ValueStore::new();
        let range = AddressRange::new(addr, 128);
        let _ = d.dma_get(1, range, Cycle::ZERO, &mut m, Some(&mut spm));
        assert_eq!(spm.read_word(addr), 1234, "get snooped the dirty copy");
        // The SPM copy is modified locally, then drained back to memory.
        spm.write_word(addr, 5678);
        let _ = d.dma_put(2, range, Cycle::ZERO, &mut m, Some(&mut spm));
        assert_eq!(m.read_word(CoreId::new(0), addr), Some(5678));
    }

    #[test]
    fn partial_line_transfers_do_not_clobber_neighbours() {
        let mut m = memsys();
        m.enable_value_tracking();
        let mut d = dmac();
        // The chunk covers the middle of a line; its neighbours hold data.
        let line_base = Addr::new(0x80_0000);
        let _ = m.access(
            CoreId::new(1),
            line_base,
            mem::AccessKind::Store,
            MessageClass::Write,
            1,
        );
        m.write_word(CoreId::new(1), line_base, 11);
        m.write_word(CoreId::new(1), line_base + 56, 99);
        let chunk = AddressRange::new(line_base + 16, 16);
        let mut spm = ValueStore::new();
        let _ = d.dma_get(1, chunk, Cycle::ZERO, &mut m, Some(&mut spm));
        assert_eq!(spm.read_word(line_base), 0, "outside the chunk: not staged");
        spm.write_word(line_base + 16, 7);
        let _ = d.dma_put(2, chunk, Cycle::ZERO, &mut m, Some(&mut spm));
        assert_eq!(m.read_word(CoreId::new(0), line_base), Some(11));
        assert_eq!(m.read_word(CoreId::new(0), line_base + 16), Some(7));
        assert_eq!(m.read_word(CoreId::new(0), line_base + 56), Some(99));
    }

    #[test]
    fn export_stats_names() {
        let mut m = memsys();
        let mut d = dmac();
        let _ = d.dma_get(
            1,
            AddressRange::new(Addr::new(0x1000), 128),
            Cycle::ZERO,
            &mut m,
            None,
        );
        let mut stats = StatRegistry::new();
        d.export_stats(&mut stats);
        assert_eq!(stats.count("dmac.gets"), 1);
        assert_eq!(stats.count("dmac.lines"), 2);
        assert_eq!(stats.count("dmac.queue_occupancy_max"), 1);
    }

    #[test]
    fn queue_occupancy_high_water_mark_tracks_outstanding_peak() {
        let mut m = memsys();
        let mut d = dmac();
        assert_eq!(d.queue_occupancy_max(), 0);
        for tag in 0..3 {
            let _ = d.dma_get(
                tag,
                AddressRange::new(Addr::new(0x1000 * (tag as u64 + 1)), 64),
                Cycle::ZERO,
                &mut m,
                None,
            );
        }
        assert_eq!(d.queue_occupancy_max(), 3);
        // Draining does not lower the mark...
        let _ = d.dma_synch(&[0, 1, 2], Cycle::ZERO);
        assert_eq!(d.outstanding(), 0);
        assert_eq!(d.queue_occupancy_max(), 3);
        // ...and a smaller later burst does not raise it.
        let _ = d.dma_get(
            9,
            AddressRange::new(Addr::new(0x9000), 64),
            Cycle::ZERO,
            &mut m,
            None,
        );
        assert_eq!(d.queue_occupancy_max(), 3);

        // The chip-wide export max-merges rather than sums per-core peaks.
        let mut stats = StatRegistry::new();
        d.export_stats(&mut stats);
        let mut other = Dmac::new(CoreId::new(1), DmacConfig::isca2015());
        let _ = other.dma_get(
            1,
            AddressRange::new(Addr::new(0x2000), 64),
            Cycle::ZERO,
            &mut m,
            None,
        );
        other.export_stats(&mut stats);
        assert_eq!(stats.count("dmac.queue_occupancy_max"), 3);
    }
}
