//! SPM address-space mapping (paper Figure 2).
//!
//! The system reserves a contiguous range of the virtual (and physical)
//! address space for the scratchpads: one equally-sized window per core.
//! Every core keeps eight registers describing the global SPM range, its
//! local window and the corresponding physical ranges.  A range check on
//! every memory instruction decides whether the access targets an SPM — in
//! which case the MMU/TLB is bypassed and the physical SPM address is formed
//! directly — or regular global memory.

use serde::{Deserialize, Serialize};
use simkernel::{ByteSize, CoreId};

use mem::{Addr, AddressRange};

/// Default virtual base address of the global SPM window.
///
/// The SPM window occupies a tiny fraction of the 64-bit address space far
/// away from ordinary heap/stack allocations, as in the paper.
pub const DEFAULT_SPM_VIRTUAL_BASE: u64 = 0xFFFF_8000_0000_0000;

/// Default physical base address of the SPM window.
pub const DEFAULT_SPM_PHYSICAL_BASE: u64 = 0x0000_2000_0000_0000;

/// The per-core SPM address-mapping registers and the global window layout.
///
/// # Example
///
/// ```
/// use spm::SpmAddressMap;
/// use simkernel::{ByteSize, CoreId};
///
/// let map = SpmAddressMap::new(64, ByteSize::kib(32));
/// let local = map.local_range(CoreId::new(3));
/// assert_eq!(local.len(), 32 * 1024);
/// let addr = map.spm_addr(CoreId::new(3), 0x100);
/// assert_eq!(map.owner_of(addr), Some(CoreId::new(3)));
/// assert!(map.is_spm_addr(addr));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpmAddressMap {
    cores: usize,
    spm_size: ByteSize,
    virtual_base: Addr,
    physical_base: Addr,
}

impl SpmAddressMap {
    /// Creates the mapping for `cores` scratchpads of `spm_size` each, using
    /// the default reserved window.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `spm_size` is zero.
    pub fn new(cores: usize, spm_size: ByteSize) -> Self {
        Self::with_bases(
            cores,
            spm_size,
            Addr::new(DEFAULT_SPM_VIRTUAL_BASE),
            Addr::new(DEFAULT_SPM_PHYSICAL_BASE),
        )
    }

    /// Creates the mapping with explicit virtual and physical base addresses.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `spm_size` is zero.
    pub fn with_bases(
        cores: usize,
        spm_size: ByteSize,
        virtual_base: Addr,
        physical_base: Addr,
    ) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(spm_size.bytes() > 0, "SPM size must be non-zero");
        SpmAddressMap {
            cores,
            spm_size,
            virtual_base,
            physical_base,
        }
    }

    /// Number of scratchpads mapped.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Size of each scratchpad.
    pub fn spm_size(&self) -> ByteSize {
        self.spm_size
    }

    /// The global virtual range covering every SPM (the "global SPM range"
    /// registers of the paper).
    pub fn global_range(&self) -> AddressRange {
        AddressRange::new(self.virtual_base, self.spm_size.bytes() * self.cores as u64)
    }

    /// The virtual range of one core's SPM (the "local SPM" registers).
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn local_range(&self, core: CoreId) -> AddressRange {
        assert!(core.index() < self.cores, "core {core} outside the SPM map");
        let start = self.virtual_base + self.spm_size.bytes() * core.index() as u64;
        AddressRange::new(start, self.spm_size.bytes())
    }

    /// Returns `true` if the virtual address falls inside any SPM window.
    ///
    /// This is the range check performed on every memory instruction before
    /// any MMU action takes place.
    pub fn is_spm_addr(&self, vaddr: Addr) -> bool {
        self.global_range().contains(vaddr)
    }

    /// Returns the core whose SPM contains `vaddr`, if any.
    pub fn owner_of(&self, vaddr: Addr) -> Option<CoreId> {
        if !self.is_spm_addr(vaddr) {
            return None;
        }
        let offset = vaddr - self.virtual_base;
        Some(CoreId::new((offset / self.spm_size.bytes()) as usize))
    }

    /// Returns the byte offset of `vaddr` inside its SPM, if it is an SPM address.
    pub fn offset_of(&self, vaddr: Addr) -> Option<u64> {
        self.owner_of(vaddr)
            .map(|core| vaddr - self.local_range(core).start())
    }

    /// Builds the virtual address of byte `offset` inside `core`'s SPM.
    ///
    /// # Panics
    ///
    /// Panics if the core or offset is out of range.
    pub fn spm_addr(&self, core: CoreId, offset: u64) -> Addr {
        assert!(
            offset < self.spm_size.bytes(),
            "offset {offset:#x} outside the SPM"
        );
        self.local_range(core).start() + offset
    }

    /// Translates an SPM virtual address into its physical address, bypassing
    /// the MMU (the direct mapping of Figure 2).
    ///
    /// Returns `None` for addresses outside the SPM window.
    pub fn translate(&self, vaddr: Addr) -> Option<Addr> {
        if !self.is_spm_addr(vaddr) {
            return None;
        }
        Some(self.physical_base + (vaddr - self.virtual_base))
    }

    /// Returns `true` if `vaddr` belongs to `core`'s own scratchpad.
    pub fn is_local(&self, core: CoreId, vaddr: Addr) -> bool {
        self.owner_of(vaddr) == Some(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> SpmAddressMap {
        SpmAddressMap::new(64, ByteSize::kib(32))
    }

    #[test]
    fn global_range_covers_all_spms() {
        let m = map();
        assert_eq!(m.global_range().len(), 64 * 32 * 1024);
        assert_eq!(m.cores(), 64);
        assert_eq!(m.spm_size(), ByteSize::kib(32));
    }

    #[test]
    fn local_ranges_are_disjoint_and_contiguous() {
        let m = map();
        for i in 0..63 {
            let a = m.local_range(CoreId::new(i));
            let b = m.local_range(CoreId::new(i + 1));
            assert_eq!(a.end(), b.start(), "windows must be back to back");
            assert!(!a.overlaps(&b));
        }
    }

    #[test]
    fn range_check_identifies_spm_addresses() {
        let m = map();
        let inside = m.spm_addr(CoreId::new(10), 0x123);
        assert!(m.is_spm_addr(inside));
        assert_eq!(m.owner_of(inside), Some(CoreId::new(10)));
        assert_eq!(m.offset_of(inside), Some(0x123));
        assert!(m.is_local(CoreId::new(10), inside));
        assert!(!m.is_local(CoreId::new(11), inside));

        let outside = Addr::new(0x1000);
        assert!(!m.is_spm_addr(outside));
        assert_eq!(m.owner_of(outside), None);
        assert_eq!(m.offset_of(outside), None);
        assert_eq!(m.translate(outside), None);
    }

    #[test]
    fn boundaries_are_half_open() {
        let m = map();
        let first = m.global_range().start();
        let last = m.global_range().end();
        assert!(m.is_spm_addr(first));
        assert!(!m.is_spm_addr(last));
        assert_eq!(m.owner_of(last - 1u64), Some(CoreId::new(63)));
    }

    #[test]
    fn translation_is_a_fixed_offset() {
        let m = map();
        let v = m.spm_addr(CoreId::new(5), 0x40);
        let p = m.translate(v).unwrap();
        assert_eq!(
            p - Addr::new(DEFAULT_SPM_PHYSICAL_BASE),
            v - Addr::new(DEFAULT_SPM_VIRTUAL_BASE)
        );
    }

    #[test]
    fn custom_bases() {
        let m = SpmAddressMap::with_bases(
            2,
            ByteSize::kib(4),
            Addr::new(0x1_0000),
            Addr::new(0x9_0000),
        );
        assert_eq!(m.local_range(CoreId::new(1)).start(), Addr::new(0x1_1000));
        assert_eq!(m.translate(Addr::new(0x1_0010)), Some(Addr::new(0x9_0010)));
    }

    #[test]
    #[should_panic]
    fn offset_outside_spm_panics() {
        map().spm_addr(CoreId::new(0), 32 * 1024);
    }

    #[test]
    #[should_panic]
    fn core_outside_map_panics() {
        map().local_range(CoreId::new(64));
    }
}
