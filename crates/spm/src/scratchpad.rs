//! The scratchpad memory itself and its runtime-managed buffer allocation.
//!
//! Before entering a transformed loop, the runtime library divides the SPM
//! into equally-sized buffers, one per memory reference mapped to the SPM
//! (§2.2 of the paper).  The buffer size is what the coherence protocol's
//! Base/Offset mask registers are derived from, and the buffer index is what
//! the SPMDir uses as its entry index.

use serde::{Deserialize, Serialize};
use simkernel::{ByteSize, Cycle};

/// Identifies one of the equally-sized buffers the SPM is divided into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferId(pub usize);

impl BufferId {
    /// Returns the buffer index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Configuration of one scratchpad memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpmConfig {
    /// Capacity of the scratchpad.
    pub size: ByteSize,
    /// Access latency.
    pub latency: Cycle,
    /// Block size used for DMA transfers.
    pub block: ByteSize,
}

impl SpmConfig {
    /// The paper's configuration: 32 KB, 2-cycle access, 64-byte blocks.
    pub fn isca2015() -> Self {
        SpmConfig {
            size: ByteSize::kib(32),
            latency: Cycle::new(2),
            block: ByteSize::bytes_exact(64),
        }
    }

    /// A scaled-down scratchpad for fast tests.
    pub fn small() -> Self {
        SpmConfig {
            size: ByteSize::kib(8),
            latency: Cycle::new(2),
            block: ByteSize::bytes_exact(64),
        }
    }
}

impl Default for SpmConfig {
    fn default() -> Self {
        Self::isca2015()
    }
}

/// One per-core scratchpad memory.
///
/// The scratchpad is a timing and occupancy model: it tracks the current
/// buffer partitioning (set up by the runtime library before each loop) and
/// counts local and remote accesses for the energy model.  Data contents are
/// not stored — the simulator is trace driven.
///
/// # Example
///
/// ```
/// use spm::{Scratchpad, SpmConfig};
///
/// let mut spm = Scratchpad::new(SpmConfig::isca2015());
/// let buffers = spm.allocate_buffers(2).unwrap();
/// assert_eq!(buffers.len(), 2);
/// assert_eq!(spm.buffer_size().bytes(), 16 * 1024);
/// assert_eq!(spm.buffer_base(buffers[1]), 16 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scratchpad {
    config: SpmConfig,
    buffers: usize,
    local_reads: u64,
    local_writes: u64,
    remote_reads: u64,
    remote_writes: u64,
    dma_fill_bytes: u64,
    dma_drain_bytes: u64,
}

impl Scratchpad {
    /// Creates an empty scratchpad.
    pub fn new(config: SpmConfig) -> Self {
        Scratchpad {
            config,
            buffers: 0,
            local_reads: 0,
            local_writes: 0,
            remote_reads: 0,
            remote_writes: 0,
            dma_fill_bytes: 0,
            dma_drain_bytes: 0,
        }
    }

    /// The scratchpad configuration.
    pub fn config(&self) -> &SpmConfig {
        &self.config
    }

    /// Access latency of the scratchpad array.
    pub fn latency(&self) -> Cycle {
        self.config.latency
    }

    /// Divides the scratchpad into `count` equally-sized buffers, replacing
    /// any previous partitioning (what `ALLOCATE_BUFFERS` does in the paper's
    /// Figure 3).
    ///
    /// Returns `None` if `count` is zero or the buffers would be smaller than
    /// one DMA block.
    pub fn allocate_buffers(&mut self, count: usize) -> Option<Vec<BufferId>> {
        if count == 0 {
            return None;
        }
        let per_buffer = self.config.size.bytes() / count as u64;
        if per_buffer < self.config.block.bytes() {
            return None;
        }
        self.buffers = count;
        Some((0..count).map(BufferId).collect())
    }

    /// Number of buffers in the current partitioning.
    pub fn buffer_count(&self) -> usize {
        self.buffers
    }

    /// Size of each buffer in the current partitioning.
    ///
    /// Returns the whole SPM size when no partitioning is active.
    pub fn buffer_size(&self) -> ByteSize {
        if self.buffers == 0 {
            self.config.size
        } else {
            self.config.size / self.buffers as u64
        }
    }

    /// Byte offset of a buffer's first element inside the SPM.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is outside the current partitioning.
    pub fn buffer_base(&self, buffer: BufferId) -> u64 {
        assert!(
            buffer.index() < self.buffers,
            "buffer {buffer:?} not allocated"
        );
        self.buffer_size().bytes() * buffer.index() as u64
    }

    /// Records a load issued by the owning core and returns its latency.
    pub fn read_local(&mut self) -> Cycle {
        self.local_reads += 1;
        self.config.latency
    }

    /// Records a store issued by the owning core and returns its latency.
    pub fn write_local(&mut self) -> Cycle {
        self.local_writes += 1;
        self.config.latency
    }

    /// Records a load arriving from a remote core (diverted guarded access).
    pub fn read_remote(&mut self) -> Cycle {
        self.remote_reads += 1;
        self.config.latency
    }

    /// Records a store arriving from a remote core (diverted guarded access).
    pub fn write_remote(&mut self) -> Cycle {
        self.remote_writes += 1;
        self.config.latency
    }

    /// Records bytes written into the SPM by a `dma-get`.
    pub fn record_dma_fill(&mut self, bytes: u64) {
        self.dma_fill_bytes += bytes;
    }

    /// Records bytes drained from the SPM by a `dma-put`.
    pub fn record_dma_drain(&mut self, bytes: u64) {
        self.dma_drain_bytes += bytes;
    }

    /// Total accesses served by the SPM array (local + remote + DMA blocks).
    pub fn total_array_accesses(&self) -> u64 {
        let block = self.config.block.bytes().max(1);
        self.local_reads
            + self.local_writes
            + self.remote_reads
            + self.remote_writes
            + self.dma_fill_bytes.div_ceil(block)
            + self.dma_drain_bytes.div_ceil(block)
    }

    /// Loads and stores issued by the owning core.
    pub fn local_accesses(&self) -> u64 {
        self.local_reads + self.local_writes
    }

    /// Loads and stores arriving from remote cores.
    pub fn remote_accesses(&self) -> u64 {
        self.remote_reads + self.remote_writes
    }

    /// Bytes moved into the SPM by DMA.
    pub fn dma_fill_bytes(&self) -> u64 {
        self.dma_fill_bytes
    }

    /// Bytes moved out of the SPM by DMA.
    pub fn dma_drain_bytes(&self) -> u64 {
        self.dma_drain_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table1() {
        let cfg = SpmConfig::default();
        assert_eq!(cfg.size, ByteSize::kib(32));
        assert_eq!(cfg.latency, Cycle::new(2));
        assert_eq!(cfg.block, ByteSize::bytes_exact(64));
    }

    #[test]
    fn buffer_allocation_divides_evenly() {
        let mut spm = Scratchpad::new(SpmConfig::isca2015());
        assert_eq!(spm.buffer_count(), 0);
        assert_eq!(spm.buffer_size(), ByteSize::kib(32));
        let ids = spm.allocate_buffers(4).unwrap();
        assert_eq!(ids.len(), 4);
        assert_eq!(spm.buffer_count(), 4);
        assert_eq!(spm.buffer_size(), ByteSize::kib(8));
        assert_eq!(spm.buffer_base(BufferId(0)), 0);
        assert_eq!(spm.buffer_base(BufferId(3)), 24 * 1024);
    }

    #[test]
    fn reallocation_replaces_partitioning() {
        let mut spm = Scratchpad::new(SpmConfig::isca2015());
        spm.allocate_buffers(2).unwrap();
        spm.allocate_buffers(8).unwrap();
        assert_eq!(spm.buffer_count(), 8);
        assert_eq!(spm.buffer_size(), ByteSize::kib(4));
    }

    #[test]
    fn degenerate_allocations_rejected() {
        let mut spm = Scratchpad::new(SpmConfig::isca2015());
        assert!(spm.allocate_buffers(0).is_none());
        // 32 KiB / 1024 buffers = 32 B < one 64 B block.
        assert!(spm.allocate_buffers(1024).is_none());
    }

    #[test]
    fn access_counters() {
        let mut spm = Scratchpad::new(SpmConfig::small());
        assert_eq!(spm.read_local(), Cycle::new(2));
        assert_eq!(spm.write_local(), Cycle::new(2));
        assert_eq!(spm.read_remote(), Cycle::new(2));
        assert_eq!(spm.write_remote(), Cycle::new(2));
        spm.record_dma_fill(256);
        spm.record_dma_drain(64);
        assert_eq!(spm.local_accesses(), 2);
        assert_eq!(spm.remote_accesses(), 2);
        assert_eq!(spm.dma_fill_bytes(), 256);
        assert_eq!(spm.dma_drain_bytes(), 64);
        // 4 demand + 4 fill blocks + 1 drain block.
        assert_eq!(spm.total_array_accesses(), 4 + 4 + 1);
    }

    #[test]
    #[should_panic]
    fn buffer_base_outside_allocation_panics() {
        let mut spm = Scratchpad::new(SpmConfig::isca2015());
        spm.allocate_buffers(2).unwrap();
        let _ = spm.buffer_base(BufferId(2));
    }
}
